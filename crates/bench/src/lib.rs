//! Experiment harness regenerating every figure, listing and quantitative
//! claim of the paper.
//!
//! Each experiment of the per-experiment index in `DESIGN.md` §4 is
//! implemented in [`experiments`] and returns [`sched_metrics::Table`]s; the
//! `experiments` binary prints them, and `EXPERIMENTS.md` records a captured
//! run.  The Criterion benches under `benches/` time the same scenarios,
//! which are built by [`scenarios`].

pub mod experiments;
pub mod scenarios;

pub use experiments::{all_experiments, run_experiment, ExperimentId};
