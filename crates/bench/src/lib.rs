//! Experiment harness regenerating every figure, listing and quantitative
//! claim of the paper.
//!
//! Each experiment of the per-experiment index in `DESIGN.md` §4 is
//! implemented in [`experiments`] and returns [`sched_metrics::Table`]s; the
//! `experiments` binary prints them, and `EXPERIMENTS.md` records a captured
//! run.  The Criterion benches under `benches/` time the same scenarios,
//! which are built by [`scenarios`].
//!
//! On top of the bespoke tables, [`runner`] declares every experiment once
//! as an [`ExperimentSpec`] and executes it against three interchangeable
//! [`Backend`]s — the pure model ([`runner::ModelBackend`]), the
//! discrete-event simulator ([`runner::SimBackend`]) and real contending
//! OS threads ([`runner::RqBackend`]).  `experiments --json` serializes the
//! resulting [`ExperimentRecord`]s to `BENCH_results.json`, the workspace's
//! machine-readable perf trajectory.

pub mod catalog;
pub mod experiments;
pub mod fuzz;
pub mod report;
pub mod runner;
pub mod scenarios;

/// The shared JSON codec (re-exported from `sched-json`, which also backs
/// the `xtask bench-diff` gate so writer and reader can never disagree).
pub use sched_json as json;

pub use catalog::{builtin, catalog, from_doc, load_dir, load_str, to_doc, LoadedScenario};
pub use experiments::{all_experiments, run_experiment, ExperimentId};
pub use fuzz::{
    check_ordering, check_records, check_sanity, fuzz_scenarios, FuzzConfig, FuzzReport, Violation,
};
pub use report::{run_traced_backend, trace_report, TRACEABLE_BACKENDS};
pub use runner::{
    records_table, records_to_json, records_to_json_full, run_exec_traced, run_rq_traced,
    run_sim_result, run_sim_traced, set_trace_dir, Backend, BatchK, BurstSpec, Driver, ExecBackend,
    ExperimentRecord, ExperimentRunner, ExperimentSpec, ModelBackend, OpenLoopDriverSpec,
    PolicySpec, RqBackend, SimBackend, SimEngine, SimEventBackend, SpecError, StormSpec, TopoSpec,
    WorkloadKind, WorkloadSpec,
};
