//! Offline reports folded from a drained decision trace — the library
//! half of `cargo run -p xtask -- trace-report`.
//!
//! A trace is a merged, time-sorted stream of per-core scheduling
//! decisions ([`sched_trace::Trace`]); the report answers three questions
//! the aggregate counters cannot:
//!
//! * **How long does a thief hunt before it eats, per distance class?**
//!   [`steal_latency_table`] measures each successful steal's *hunt
//!   latency* — the span from the moment the thief parked or first failed
//!   an attempt to the success — and buckets it into one power-of-two
//!   [`Histogram`] per [`StealLevel`].  A remote-level histogram whose
//!   p99 dwarfs the SMT-level one is the locality tax made visible.
//! * **Why was each core idle, and what woke it?** [`idle_attribution_table`]
//!   pairs `Park`/`Unpark` events into idle intervals and attributes each
//!   interval to the decision that ended it — a steal by the idle core, a
//!   placement onto it, or an injector drain — so "X% idle" decomposes
//!   into *who* fixed it and *how*.
//! * **Does batching keep amortising as the run drains?**
//!   [`acquisition_timeline_table`] slices the trace span into equal
//!   windows and reports tasks-per-acquisition in each, the over-time
//!   view of E23's end-of-run aggregate.
//!
//! [`trace_report`] bundles all three; [`run_traced_backend`] maps a
//! record backend name to the matching traced runner so callers (xtask)
//! can go from a catalog [`ExperimentSpec`] to tables without naming
//! substrate types.

use sched_core::CoreId;
use sched_metrics::{Histogram, Table};
use sched_topology::StealLevel;
use sched_trace::{StealOutcomeKind, Trace, TraceEvent};

use crate::runner::{
    run_exec_traced, run_rq_traced, run_sim_traced, ExperimentRecord, ExperimentSpec, SimEngine,
};

/// Record-backend names [`run_traced_backend`] accepts, in the catalog's
/// canonical order.
pub const TRACEABLE_BACKENDS: [&str; 7] =
    ["sim", "sim-event", "rq", "rq-deque", "rq-deque-tiny", "rq-deque-spill", "exec"];

/// Runs one catalog spec on the named backend with a recording trace
/// sink attached, returning the record and the drained trace.
///
/// Returns `None` when the backend cannot execute the spec (the
/// simulators refuse overflow storms and batch sweeps, the tiny-ring
/// flavours refuse everything *but* storms) — the same compatibility
/// rules the unified runner applies.  Unknown names are an `Err` so the
/// CLI can distinguish a typo from an incompatible scenario.
pub fn run_traced_backend(
    backend: &str,
    spec: &ExperimentSpec,
) -> Result<Option<(ExperimentRecord, Trace)>, String> {
    Ok(match backend {
        "sim" => run_sim_traced(SimEngine::Tick, spec),
        "sim-event" => run_sim_traced(SimEngine::Event, spec),
        // The tiny-ring flavours exist to be overflowed; on anything but
        // a storm they measure ring-capacity artefacts, so the unified
        // runner skips them and the report does the same.
        "rq-deque-tiny" | "rq-deque-spill" if spec.driver.storm().is_none() => None,
        "rq" => run_rq_traced::<sched_rq::PerCoreRq<sched_rq::FifoQueue>>("rq", spec),
        "rq-deque" => run_rq_traced::<sched_rq::DequeRq>("rq-deque", spec),
        "rq-deque-tiny" => run_rq_traced::<sched_rq::TinyDequeRq>("rq-deque-tiny", spec),
        "rq-deque-spill" => run_rq_traced::<sched_rq::TinySpillDequeRq>("rq-deque-spill", spec),
        // The executor runs open-loop streams alone (the same rule its
        // unified-runner backend applies via `Driver::openloop`).
        "exec" => run_exec_traced(spec),
        other => {
            return Err(format!(
                "unknown backend `{other}` (expected one of: {})",
                TRACEABLE_BACKENDS.join(", ")
            ))
        }
    })
}

/// The full report: steal-latency histograms, idle attribution, and the
/// tasks-per-acquisition timeline, in that order.
pub fn trace_report(trace: &Trace) -> Vec<Table> {
    vec![
        steal_latency_table(trace),
        idle_attribution_table(trace),
        acquisition_timeline_table(trace),
    ]
}

/// Label for the steal-latency row of attempts that carried no
/// [`StealLevel`] (flat topologies, and failure outcomes on substrates
/// that only resolve the level on success).
const UNLEVELLED: &str = "(unlevelled)";

/// Per-level hunt-latency histograms, one row per level with at least one
/// successful steal.
///
/// The *hunt* starts when a core parks or records its first failed
/// [`TraceEvent::StealAttempt`] since it last succeeded, and ends at the
/// next successful attempt; the success's latency is the span between the
/// two, attributed to the level the winning attempt stole at.  A success
/// with no preceding failure or park hunted for zero time.
pub fn steal_latency_table(trace: &Trace) -> Table {
    let mut table = Table::new(
        "steal latency by level (ns from park/first failure to the successful claim)",
        &["level", "acquisitions", "min", "mean", "p50", "p99", "max"],
    );
    // Index 0..4 = StealLevel::ALL, index 4 = unlevelled successes.
    let mut hists: Vec<Histogram> = vec![Histogram::new(); StealLevel::ALL.len() + 1];
    let mut hunt_start: Vec<Option<u64>> = vec![None; trace.nr_cores];
    for e in &trace.events {
        let core = e.core.0;
        match e.event {
            TraceEvent::Park => {
                hunt_start[core].get_or_insert(e.ts);
            }
            TraceEvent::StealAttempt { outcome: StealOutcomeKind::Stole, level, .. } => {
                let started = hunt_start[core].take().unwrap_or(e.ts);
                let slot = level.map_or(StealLevel::ALL.len(), StealLevel::index);
                hists[slot].record(e.ts.saturating_sub(started));
            }
            TraceEvent::StealAttempt { .. } => {
                hunt_start[core].get_or_insert(e.ts);
            }
            // An unpark without a steal means the hunt ended some other
            // way (work was placed on the core); a later success must not
            // measure from the stale start.
            TraceEvent::Unpark => hunt_start[core] = None,
            _ => {}
        }
    }
    for (slot, hist) in hists.iter().enumerate() {
        if hist.count() == 0 {
            continue;
        }
        let level = if slot < StealLevel::ALL.len() {
            StealLevel::from_index(slot).short_name()
        } else {
            UNLEVELLED
        };
        table.row(&[
            level.to_string(),
            hist.count().to_string(),
            hist.min().unwrap_or(0).to_string(),
            format!("{:.0}", hist.mean()),
            hist.quantile(0.5).to_string(),
            hist.quantile(0.99).to_string(),
            hist.max().to_string(),
        ]);
    }
    table
}

/// What ended (or failed to end) one idle interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum IdleCause {
    /// The idle core stole work for itself.
    StoleWork,
    /// Another decision placed a waking task onto the idle core.
    PlacedWakeup,
    /// A tick drained the idle core's injector back into its ring.
    InjectorDrain,
    /// The interval closed with no attributable decision in its span.
    Unattributed,
    /// The trace ended with the core still parked.
    StillIdle,
}

impl IdleCause {
    fn label(self) -> &'static str {
        match self {
            IdleCause::StoleWork => "stole work",
            IdleCause::PlacedWakeup => "placed wakeup",
            IdleCause::InjectorDrain => "injector drain",
            IdleCause::Unattributed => "unattributed",
            IdleCause::StillIdle => "still idle at trace end",
        }
    }
}

/// Idle-interval attribution: pairs each core's `Park` with its next
/// `Unpark` and attributes the interval to the decision that ended it.
///
/// Attribution scans the interval's half-open span `(park, unpark]` for,
/// in priority order: a successful steal *by* the idle core, a
/// [`TraceEvent::PlaceDecision`] targeting it, or an injector drain on
/// it.  Intervals still open when the trace ends are reported separately
/// (their duration runs to the last event's timestamp), and a `Park`
/// with nothing after it contributes a zero-length still-idle interval
/// rather than disappearing.
pub fn idle_attribution_table(trace: &Trace) -> Table {
    let mut table = Table::new(
        "idle intervals by ending cause (from park/unpark spans)",
        &["cause", "intervals", "total idle ns", "mean ns", "longest ns"],
    );
    let trace_end = trace.events.last().map_or(0, |e| e.ts);
    // (cause, duration) per closed interval.
    let mut intervals: Vec<(IdleCause, u64)> = Vec::new();
    for core in 0..trace.nr_cores {
        let mut parked_at: Option<u64> = None;
        let mut cause: Option<IdleCause> = None;
        for e in &trace.events {
            let mine = e.core == CoreId(core);
            match e.event {
                TraceEvent::Park if mine => {
                    parked_at.get_or_insert(e.ts);
                }
                TraceEvent::Unpark if mine => {
                    if let Some(start) = parked_at.take() {
                        intervals.push((
                            cause.take().unwrap_or(IdleCause::Unattributed),
                            e.ts.saturating_sub(start),
                        ));
                    }
                }
                // Causes only count while parked, and the strongest
                // (most direct) attribution wins over a later weaker one.
                _ if parked_at.is_some() => {
                    let seen = match e.event {
                        TraceEvent::StealAttempt { outcome: StealOutcomeKind::Stole, .. }
                            if mine =>
                        {
                            Some(IdleCause::StoleWork)
                        }
                        TraceEvent::PlaceDecision { core: target, .. }
                            if target == CoreId(core) =>
                        {
                            Some(IdleCause::PlacedWakeup)
                        }
                        TraceEvent::InjectorDrain { .. } if mine => Some(IdleCause::InjectorDrain),
                        _ => None,
                    };
                    if let Some(seen) = seen {
                        cause = Some(cause.map_or(seen, |c| c.min(seen)));
                    }
                }
                _ => {}
            }
        }
        if let Some(start) = parked_at {
            intervals.push((IdleCause::StillIdle, trace_end.saturating_sub(start)));
        }
    }
    for cause in [
        IdleCause::StoleWork,
        IdleCause::PlacedWakeup,
        IdleCause::InjectorDrain,
        IdleCause::Unattributed,
        IdleCause::StillIdle,
    ] {
        let spans: Vec<u64> =
            intervals.iter().filter(|(c, _)| *c == cause).map(|&(_, d)| d).collect();
        if spans.is_empty() {
            continue;
        }
        let total: u64 = spans.iter().sum();
        table.row(&[
            cause.label().to_string(),
            spans.len().to_string(),
            total.to_string(),
            format!("{:.0}", total as f64 / spans.len() as f64),
            spans.iter().max().copied().unwrap_or(0).to_string(),
        ]);
    }
    table
}

/// Number of equal-width windows the acquisition timeline slices the
/// trace span into.
const TIMELINE_WINDOWS: u64 = 8;

/// Tasks-per-acquisition over time: the trace span sliced into
/// eight equal windows, each reporting how many queue
/// acquisitions (successful steals) it saw and how many tasks each one
/// delivered on average.
///
/// A healthy batched run starts well above 1.0 and decays towards it as
/// the backlog drains; a run that sits at 1.0 throughout never amortised
/// anything.  Windows with no acquisitions print `-` rather than 0.0 —
/// "nothing was stolen" and "batching collapsed" are different findings.
pub fn acquisition_timeline_table(trace: &Trace) -> Table {
    let mut table = Table::new(
        "tasks per acquisition over time",
        &["window", "span ns", "acquisitions", "tasks moved", "tasks/acq"],
    );
    let (first, last) = match (trace.events.first(), trace.events.last()) {
        (Some(f), Some(l)) => (f.ts, l.ts),
        _ => return table,
    };
    let width = ((last - first) / TIMELINE_WINDOWS).max(1);
    let mut acquisitions = vec![0u64; TIMELINE_WINDOWS as usize];
    let mut moved_tasks = vec![0u64; TIMELINE_WINDOWS as usize];
    for e in &trace.events {
        if let TraceEvent::StealAttempt { outcome: StealOutcomeKind::Stole, moved, .. } = e.event {
            let w = (((e.ts - first) / width) as usize).min(TIMELINE_WINDOWS as usize - 1);
            acquisitions[w] += 1;
            moved_tasks[w] += u64::from(moved);
        }
    }
    for w in 0..TIMELINE_WINDOWS as usize {
        let start = first + w as u64 * width;
        table.row(&[
            format!("[{start}, {})", start + width),
            width.to_string(),
            acquisitions[w].to_string(),
            moved_tasks[w].to_string(),
            if acquisitions[w] == 0 {
                "-".to_string()
            } else {
                format!("{:.2}", moved_tasks[w] as f64 / acquisitions[w] as f64)
            },
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::TaskId;
    use sched_trace::TraceSink;

    /// A hand-built trace exercising every attribution path at known
    /// timestamps.
    fn synthetic() -> Trace {
        let sink = TraceSink::recording(3);
        let c0 = CoreId(0);
        let c1 = CoreId(1);
        let c2 = CoreId(2);
        // Core 0: parks at 100, fails at 150, steals at 400 (node level)
        // — one 300ns idle interval ended by its own steal, and one
        // leveled hunt of 300ns.
        sink.record(c0, 100, &TraceEvent::Park);
        sink.record(
            c0,
            150,
            &TraceEvent::StealAttempt {
                victim: Some(c1),
                level: None,
                outcome: StealOutcomeKind::RecheckFailed,
                k: 1,
                moved: 0,
            },
        );
        sink.record(
            c0,
            400,
            &TraceEvent::StealAttempt {
                victim: Some(c1),
                level: Some(StealLevel::SameNode),
                outcome: StealOutcomeKind::Stole,
                k: 2,
                moved: 2,
            },
        );
        sink.record(c0, 400, &TraceEvent::Unpark);
        // Core 1: parks at 200, a wakeup is placed on it at 500, unparks
        // at 500 — a 300ns interval attributed to placement.
        sink.record(c1, 200, &TraceEvent::Park);
        sink.record(c2, 500, &TraceEvent::PlaceDecision { task: TaskId(9), core: c1 });
        sink.record(c1, 500, &TraceEvent::Unpark);
        // Core 2: parks at 900 and the trace ends at 1000 — still idle.
        sink.record(c2, 900, &TraceEvent::Park);
        sink.record(c0, 1000, &TraceEvent::TaskDone { task: TaskId(1) });
        sink.drain()
    }

    #[test]
    fn hunt_latency_lands_in_the_winning_attempts_level() {
        let table = steal_latency_table(&synthetic());
        let text = table.to_text();
        assert!(text.contains("node"), "the success was node-level: {text}");
        // Hunt span 100 -> 400; the p50 upper bound of the 300ns bucket
        // is 512 and the exact min/max are 300.
        assert!(text.contains("300"), "hunt latency is park-to-claim: {text}");
        assert!(!text.contains(UNLEVELLED), "no unlevelled successes here: {text}");
    }

    #[test]
    fn idle_intervals_attribute_to_what_ended_them() {
        let table = idle_attribution_table(&synthetic());
        let text = table.to_text();
        for (cause, spans) in
            [("stole work", "300"), ("placed wakeup", "300"), ("still idle at trace end", "100")]
        {
            assert!(text.contains(cause), "missing `{cause}` row: {text}");
            assert!(text.contains(spans), "`{cause}` span is wrong: {text}");
        }
        assert!(!text.contains("unattributed"), "every interval here has a cause: {text}");
    }

    #[test]
    fn the_timeline_counts_moved_tasks_not_attempts() {
        let table = acquisition_timeline_table(&synthetic());
        let text = table.to_text();
        // One acquisition of two tasks (ts 400 of a [100, 1000] span),
        // nothing in any other window.
        assert!(text.contains("2.00"), "two tasks over one acquisition: {text}");
        assert!(text.matches('-').count() >= TIMELINE_WINDOWS as usize - 1, "{text}");
    }

    #[test]
    fn an_empty_trace_reports_empty_tables_without_panicking() {
        let empty = TraceSink::recording(2).drain();
        for table in trace_report(&empty) {
            let _ = table.to_text();
        }
    }

    #[test]
    fn a_real_hierarchical_sim_run_fills_all_three_reports() {
        // E16 (hierarchical convergence on the eight-node topology) is
        // the report's showcase: leveled steals, real park/unpark spans,
        // and a draining backlog.
        let spec = crate::catalog::spec(crate::ExperimentId::E16);
        let (_, trace) = run_traced_backend("sim", &spec)
            .expect("sim is a known backend")
            .expect("the simulator executes E16");
        assert_eq!(trace.dropped, 0, "E16 fits the default rings");
        let latency = steal_latency_table(&trace).to_text();
        assert!(
            StealLevel::ALL.iter().any(|l| latency.contains(l.short_name())),
            "hierarchical steals must attribute a level: {latency}"
        );
        let idle = idle_attribution_table(&trace).to_text();
        assert!(idle.contains("stole work"), "idle eight-node cores steal their way out: {idle}");
        let timeline = acquisition_timeline_table(&trace).to_text();
        assert!(timeline.contains("1.00"), "sim steals move one task each: {timeline}");
    }

    #[test]
    fn unknown_backends_are_an_error_not_a_silent_skip() {
        let spec = crate::catalog::spec(crate::ExperimentId::E16);
        assert!(run_traced_backend("qr-deque", &spec).is_err());
        assert!(
            run_traced_backend("rq-deque-tiny", &spec).expect("known backend").is_none(),
            "tiny flavours execute nothing but storms"
        );
    }
}
