//! The thirteen experiments of the per-experiment index (DESIGN.md §4).

use std::sync::Arc;
use std::time::Instant;

use sched_core::prelude::*;
use sched_metrics::Table;
use sched_rq::MultiQueue;
use sched_verify::{
    analyze_convergence, find_non_conserving_cycle, lemmas, verify_policy, ChoiceStrategy, Scope,
};
use sched_workloads::{ImbalancePattern, StaticImbalance};

use crate::scenarios::{
    choice_variants, dual_socket, eight_node, oltp_workload, run_sim, scientific_workload,
    SchedulerKind,
};

/// Identifier of one experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ExperimentId {
    E1,
    E2,
    E3,
    E4,
    E5,
    E6,
    E7,
    E8,
    E9,
    E10,
    E11,
    E12,
    E13,
    E14,
    E15,
    E16,
    E17,
    E18,
    E19,
    E20,
    E21,
    E22,
    E23,
    E24,
    E25,
    E26,
}

impl ExperimentId {
    /// All experiments, in index order.
    pub fn all() -> Vec<ExperimentId> {
        use ExperimentId::*;
        vec![
            E1, E2, E3, E4, E5, E6, E7, E8, E9, E10, E11, E12, E13, E14, E15, E16, E17, E18, E19,
            E20, E21, E22, E23, E24, E25, E26,
        ]
    }

    /// Parses an experiment id such as `e5` or `E12`.
    pub fn parse(text: &str) -> Option<ExperimentId> {
        use ExperimentId::*;
        Some(match text.to_ascii_lowercase().as_str() {
            "e1" => E1,
            "e2" => E2,
            "e3" => E3,
            "e4" => E4,
            "e5" => E5,
            "e6" => E6,
            "e7" => E7,
            "e8" => E8,
            "e9" => E9,
            "e10" => E10,
            "e11" => E11,
            "e12" => E12,
            "e13" => E13,
            "e14" => E14,
            "e15" => E15,
            "e16" => E16,
            "e17" => E17,
            "e18" => E18,
            "e19" => E19,
            "e20" => E20,
            "e21" => E21,
            "e22" => E22,
            "e23" => E23,
            "e24" => E24,
            "e25" => E25,
            "e26" => E26,
            _ => return None,
        })
    }

    /// Short description shown by the harness.
    pub fn title(self) -> &'static str {
        use ExperimentId::*;
        match self {
            E1 => "E1  Figure 1: the choice step is irrelevant to the proofs",
            E2 => "E2  Listing 1: the simple load balancer in action",
            E3 => "E3  Listing 2 / Lemma 1: filter soundness and completeness",
            E4 => "E4  §4.2: steal soundness and sequential work conservation",
            E5 => "E5  §4.3: the greedy-filter ping-pong counterexample",
            E6 => "E6  §4.3 P1: failures imply concurrent successes",
            E7 => "E7  §4.3 P2: the potential decreases on every steal",
            E8 => "E8  §3.2: rounds to reach work conservation (the bound N)",
            E9 => "E9  §1: scientific (fork-join) workload degradation",
            E10 => "E10 §1: database (OLTP) throughput loss",
            E11 => "E11 §3.1: overhead of lock-less vs fully locked balancing",
            E12 => "E12 §5: hierarchical / NUMA-aware balancing in step 2",
            E13 => "E13 §1/§5: the DSL front-end and its two backends",
            E14 => "E14 §5: NUMA imbalance — distance-ordered stealing drains a saturated node",
            E15 => "E15 §5: cross-node ping-pong bait — locality of the victim search",
            E16 => "E16 §5: hierarchical convergence — per-level balancing stays node-local",
            E17 => {
                "E17 §3.1: bursty on/off load — instantaneous balancing thrashes, PELT converges"
            }
            E18 => "E18 §4.2: mixed niceness — instantaneous weighted vs PELT-decayed weighted",
            E19 => "E19 §3.1: load-tracker overhead on the balancing hot path",
            E20 => "E20 §3.1: steal-heavy fan-out — the owner path under thief bombardment",
            E21 => "E21 §3.1: PELT half-life sensitivity — churn vs responsiveness at 1/4/16/64 ms",
            E22 => {
                "E22 §3.2: overflow storm — ring overflow must stay stealable (injector vs spill)"
            }
            E23 => "E23 §3.1: batched stealing — tasks claimed per acquisition, k=1..8 vs half",
            E24 => "E24 §2: event-driven simulation — O(events) vs O(cores x horizon) at 1M tasks",
            E25 => "E25 §3.2: trace-only detection — the sanity checker finds the spill hole",
            E26 => {
                "E26 §4: the real executor — open-loop latency ladder, measured end-to-end p99/p999"
            }
        }
    }
}

/// Runs one experiment and returns its tables.
pub fn run_experiment(id: ExperimentId) -> Vec<Table> {
    match id {
        ExperimentId::E1 => e1_choice_irrelevance(),
        ExperimentId::E2 => e2_listing1(),
        ExperimentId::E3 => e3_lemma1(),
        ExperimentId::E4 => e4_sequential(),
        ExperimentId::E5 => e5_pingpong(),
        ExperimentId::E6 => e6_failures(),
        ExperimentId::E7 => e7_potential(),
        ExperimentId::E8 => e8_convergence(),
        ExperimentId::E9 => e9_scientific(),
        ExperimentId::E10 => e10_database(),
        ExperimentId::E11 => e11_overhead(),
        ExperimentId::E12 => e12_hierarchical(),
        ExperimentId::E13 => e13_dsl(),
        ExperimentId::E14 => e14_numa_imbalance(),
        ExperimentId::E15 => e15_cross_node_pingpong(),
        ExperimentId::E16 => e16_hierarchical_convergence(),
        ExperimentId::E17 => e17_bursty_tracking(),
        ExperimentId::E18 => e18_mixed_nice_tracking(),
        ExperimentId::E19 => e19_tracker_overhead(),
        ExperimentId::E20 => e20_steal_fanout(),
        ExperimentId::E21 => e21_half_life_sweep(),
        ExperimentId::E22 => e22_overflow_storm(),
        ExperimentId::E23 => e23_batched_stealing(),
        ExperimentId::E24 => e24_event_engine_scaling(),
        ExperimentId::E25 => e25_trace_sanity(),
        ExperimentId::E26 => e26_executor_ladder(),
    }
}

/// Runs every experiment in index order.
pub fn all_experiments() -> Vec<(ExperimentId, Vec<Table>)> {
    ExperimentId::all().into_iter().map(|id| (id, run_experiment(id))).collect()
}

fn verdict(ok: bool) -> String {
    if ok {
        "proved".into()
    } else {
        "REFUTED".into()
    }
}

/// E1: swap every choice policy into Listing 1 and re-run the whole lemma
/// suite; every variant must verify with the identical convergence bound.
fn e1_choice_irrelevance() -> Vec<Table> {
    let topo = Arc::new(dual_socket());
    let scope = Scope::small();
    let mut table = Table::new(
        "E1: the choice step (step 2) never affects the proofs [scope: 3 cores, 5 threads]",
        &["choice policy", "lemmas proved", "work conserving", "max rounds N", "instances checked"],
    );
    for (name, policy) in choice_variants(&topo) {
        let balancer = Balancer::new(policy);
        let report = verify_policy(&balancer, &scope, false);
        let n = report.convergence.as_ref().map(|n| n.to_string()).unwrap_or_else(|_| "-".into());
        table.row(&[
            name.into(),
            format!(
                "{}/{}",
                report.lemmas.iter().filter(|l| l.is_proved()).count(),
                report.lemmas.len()
            ),
            verdict(report.is_work_conserving()),
            n,
            report.total_instances().to_string(),
        ]);
    }
    vec![table]
}

/// E2: the Listing 1 balancer fixing single-hot imbalances of growing size.
fn e2_listing1() -> Vec<Table> {
    let mut table = Table::new(
        "E2: Listing 1 balancer, sequential rounds, all threads initially on core 0",
        &[
            "cores",
            "threads",
            "rounds to WC",
            "migrations",
            "failures",
            "potential before",
            "potential after",
        ],
    );
    for &cores in &[2usize, 4, 8, 16, 32, 64] {
        let threads = cores * 2;
        let loads = StaticImbalance::new(cores, threads, ImbalancePattern::SingleHot).loads();
        let mut system = SystemState::from_loads(&loads);
        let d_before = potential(&system, LoadMetric::NrThreads);
        let balancer = Balancer::new(Policy::simple());
        let result = converge(&mut system, &balancer, RoundSchedule::Sequential, 4 * threads);
        table.row(&[
            cores.to_string(),
            threads.to_string(),
            result.rounds.map(|r| r.to_string()).unwrap_or_else(|| "-".into()),
            result.total_migrations().to_string(),
            result.total_failures().to_string(),
            d_before.to_string(),
            potential(&system, LoadMetric::NrThreads).to_string(),
        ]);
    }
    vec![table]
}

/// E3: Lemma 1 checked exhaustively for each filter.
fn e3_lemma1() -> Vec<Table> {
    let scope = Scope::default_scope();
    let mut table = Table::new(
        format!("E3: Lemma 1 (Listing 2) over the exhaustive scope ({scope})"),
        &["filter", "verdict", "idle-thief instances", "check time (ms)"],
    );
    let policies: Vec<(&str, Policy)> = vec![
        ("listing1 (delta >= 2)", Policy::simple()),
        ("greedy (load >= 2)", Policy::greedy()),
        ("weighted", Policy::weighted()),
    ];
    for (name, policy) in policies {
        let balancer = Balancer::new(policy);
        let start = Instant::now();
        let report = lemmas::check_lemma1(&balancer, &scope);
        table.row(&[
            name.into(),
            verdict(report.is_proved()),
            report.instances.to_string(),
            format!("{:.1}", start.elapsed().as_secs_f64() * 1e3),
        ]);
    }
    vec![table]
}

/// E4: steal soundness and sequential work conservation.
fn e4_sequential() -> Vec<Table> {
    let scope = Scope::default_scope();
    let mut table = Table::new(
        format!("E4: §4.2 sequential-setting lemmas ({scope})"),
        &["policy", "steal soundness", "sequential WC", "instances"],
    );
    type PolicyCtor = fn() -> Policy;
    let policies: Vec<(&str, PolicyCtor)> = vec![
        ("listing1", Policy::simple),
        ("greedy", Policy::greedy),
        ("weighted", Policy::weighted),
    ];
    for (name, make) in policies {
        let balancer = Balancer::new(make());
        let sound = lemmas::check_steal_soundness(&balancer, &scope);
        let seq = lemmas::check_sequential_work_conservation(&balancer, &scope);
        table.row(&[
            name.into(),
            verdict(sound.is_proved()),
            verdict(seq.is_proved()),
            (sound.instances + seq.instances).to_string(),
        ]);
    }
    vec![table]
}

/// E5: the §4.3 ping-pong found automatically, and its absence for Listing 1.
fn e5_pingpong() -> Vec<Table> {
    let scope = Scope::small();
    let mut table = Table::new(
        "E5: §4.3 counterexample search (adversarial interleavings and choices)",
        &["filter", "violation found", "witness"],
    );
    for (name, policy) in
        [("greedy (load >= 2)", Policy::greedy()), ("listing1 (delta >= 2)", Policy::simple())]
    {
        let balancer = Balancer::new(policy);
        let witness = find_non_conserving_cycle(&balancer, &scope, ChoiceStrategy::Adversarial);
        let description = match &witness {
            Some(w) => {
                let states: Vec<String> = w.cycle.iter().map(|s| format!("{s:?}")).collect();
                format!("cycle {} (idle core starves forever)", states.join(" -> "))
            }
            None => "none within scope".into(),
        };
        table.row(&[
            name.into(),
            if witness.is_some() { "YES".into() } else { "no".into() },
            description,
        ]);
    }
    vec![table]
}

/// E6: P1 — failures only happen because a concurrent steal succeeded.
fn e6_failures() -> Vec<Table> {
    let scope = Scope::small();
    let mut table = Table::new(
        format!("E6: §4.3 P1 over every interleaving of every configuration ({scope})"),
        &["policy", "verdict", "round interleavings checked"],
    );
    for (name, policy) in [
        ("listing1", Policy::simple()),
        ("greedy", Policy::greedy()),
        ("weighted", Policy::weighted()),
    ] {
        let balancer = Balancer::new(policy);
        let report = lemmas::check_failure_implies_concurrent_success(&balancer, &scope);
        table.row(&[name.into(), verdict(report.is_proved()), report.instances.to_string()]);
    }
    vec![table]
}

/// E7: P2 — the potential decreases on every successful steal, and a traced
/// example of the potential draining to its floor.
fn e7_potential() -> Vec<Table> {
    let scope = Scope::default_scope();
    let mut lemma_table = Table::new(
        format!("E7a: §4.3 P2 potential-decrease lemma ({scope})"),
        &["policy", "verdict", "filter-holding steals checked"],
    );
    for (name, policy) in [
        ("listing1", Policy::simple()),
        ("greedy", Policy::greedy()),
        ("weighted", Policy::weighted()),
    ] {
        let balancer = Balancer::new(policy);
        let report = lemmas::check_potential_decreases(&balancer, &scope);
        lemma_table.row(&[name.into(), verdict(report.is_proved()), report.instances.to_string()]);
    }

    let mut trace = Table::new(
        "E7b: potential d per concurrent round, 8 cores, 16 threads in a step imbalance (Listing 1 policy)",
        &["round", "loads", "potential d", "successes", "failures"],
    );
    let mut system =
        SystemState::from_loads(&StaticImbalance::new(8, 16, ImbalancePattern::Step).loads());
    let balancer = Balancer::new(Policy::simple());
    let executor = ConcurrentRound::new(&balancer);
    trace.row(&[
        "0".into(),
        system.load_vector_string(LoadMetric::NrThreads),
        potential(&system, LoadMetric::NrThreads).to_string(),
        "-".into(),
        "-".into(),
    ]);
    for round in 1..=12 {
        if system.is_work_conserving() && round > 1 {
            break;
        }
        let report = executor.execute(&mut system, &RoundSchedule::AllSelectThenSteal);
        trace.row(&[
            round.to_string(),
            system.load_vector_string(LoadMetric::NrThreads),
            potential(&system, LoadMetric::NrThreads).to_string(),
            report.nr_successes().to_string(),
            report.nr_failures().to_string(),
        ]);
    }
    vec![lemma_table, trace]
}

/// E8: the convergence bound N versus core count and imbalance pattern.
fn e8_convergence() -> Vec<Table> {
    let mut table = Table::new(
        "E8a: rounds to reach work conservation (concurrent rounds, all-select-then-steal)",
        &["cores", "threads", "pattern", "rounds N", "successful steals", "failed attempts"],
    );
    for &cores in &[4usize, 8, 16, 32, 64, 128] {
        for pattern in ImbalancePattern::all() {
            let threads = cores * 2;
            let loads = StaticImbalance::new(cores, threads, pattern).loads();
            let mut system = SystemState::from_loads(&loads);
            let balancer = Balancer::new(Policy::simple());
            let result =
                converge(&mut system, &balancer, RoundSchedule::AllSelectThenSteal, 8 * threads);
            table.row(&[
                cores.to_string(),
                threads.to_string(),
                pattern.to_string(),
                result.rounds.map(|r| r.to_string()).unwrap_or_else(|| "-".into()),
                result.total_successes().to_string(),
                result.total_failures().to_string(),
            ]);
        }
    }

    let mut exhaustive = Table::new(
        "E8b: exhaustive worst-case N over every initial state and interleaving",
        &["scope", "worst-case N", "non-WC states explored"],
    );
    for scope in [Scope::new(3, 5, 64), Scope::new(4, 6, 64)] {
        let balancer = Balancer::new(Policy::simple());
        let analysis = analyze_convergence(&balancer, &scope, ChoiceStrategy::PolicyChoice)
            .expect("the Listing 1 policy is work-conserving");
        exhaustive.row(&[
            scope.to_string(),
            analysis.max_rounds.to_string(),
            analysis.states_explored.to_string(),
        ]);
    }

    // Ablation: the steal policy (step 3) trades migrations per round against
    // rounds to converge; the proofs hold for both (DESIGN.md design-choice
    // ablation).
    let mut ablation = Table::new(
        "E8c: steal-policy ablation — rounds until fully balanced (quiescent), 64 cores, 128 threads on core 0",
        &["steal policy", "rounds to WC", "rounds to quiescence", "threads migrated", "final potential d"],
    );
    let steal_variants: Vec<(&str, Policy)> = vec![
        ("steal one thread (Listing 1)", Policy::simple()),
        (
            "steal half the imbalance (CFS-style batch)",
            Policy::simple().with_steal(Box::new(StealHalfImbalance::new(LoadMetric::NrThreads))),
        ),
    ];
    for (name, policy) in steal_variants {
        let loads = StaticImbalance::new(64, 128, ImbalancePattern::SingleHot).loads();
        let mut system = SystemState::from_loads(&loads);
        let balancer = Balancer::new(policy);
        let executor = ConcurrentRound::new(&balancer);
        let mut rounds_to_wc = None;
        let mut migrations = 0usize;
        let mut rounds = 0usize;
        for round in 0..4096usize {
            if rounds_to_wc.is_none() && system.is_work_conserving() {
                rounds_to_wc = Some(round);
            }
            let report = executor.execute(&mut system, &RoundSchedule::AllSelectThenSteal);
            migrations += report.nr_stolen();
            if report.is_quiescent() {
                rounds = round;
                break;
            }
        }
        ablation.row(&[
            name.into(),
            rounds_to_wc.map(|r| r.to_string()).unwrap_or_else(|| "-".into()),
            rounds.to_string(),
            migrations.to_string(),
            potential(&system, LoadMetric::NrThreads).to_string(),
        ]);
    }
    vec![table, exhaustive, ablation]
}

/// E9: the fork-join scientific workload under the verified scheduler and
/// the buggy CFS baseline.
fn e9_scientific() -> Vec<Table> {
    let topo = dual_socket();
    let workload = scientific_workload(topo.nr_cpus());
    let mut table = Table::new(
        format!("E9: {} on a {}-core dual-socket machine", workload.name, topo.nr_cpus()),
        &[
            "scheduler",
            "makespan (ms)",
            "slowdown vs optimistic",
            "violating idle %",
            "steal failures",
        ],
    );
    let baseline = run_sim(&topo, &workload, SchedulerKind::Optimistic);
    for kind in [SchedulerKind::Optimistic, SchedulerKind::CfsSane, SchedulerKind::CfsBuggy] {
        let result = if kind == SchedulerKind::Optimistic {
            baseline.clone()
        } else {
            run_sim(&topo, &workload, kind)
        };
        table.row(&[
            kind.name().into(),
            format!("{:.2}", result.makespan_ms()),
            format!("{:.2}x", result.slowdown_vs(&baseline)),
            format!("{:.1}%", result.violating_idle_fraction() * 100.0),
            result.balance.failures.to_string(),
        ]);
    }
    vec![table]
}

/// E10: the OLTP workload under the verified scheduler and the buggy CFS
/// baseline.
fn e10_database() -> Vec<Table> {
    let topo = dual_socket();
    let workload = oltp_workload(topo.nr_cpus());
    let mut table = Table::new(
        format!("E10: {} on a {}-core dual-socket machine", workload.name, topo.nr_cpus()),
        &[
            "scheduler",
            "throughput (txn/s)",
            "relative throughput",
            "violating idle %",
            "p99 sched latency (us)",
        ],
    );
    let baseline = run_sim(&topo, &workload, SchedulerKind::Optimistic);
    for kind in [SchedulerKind::Optimistic, SchedulerKind::CfsSane, SchedulerKind::CfsBuggy] {
        let result = if kind == SchedulerKind::Optimistic {
            baseline.clone()
        } else {
            run_sim(&topo, &workload, kind)
        };
        table.row(&[
            kind.name().into(),
            format!("{:.0}", result.throughput_ops_per_sec()),
            format!("{:.2}", result.relative_throughput(&baseline)),
            format!("{:.1}%", result.violating_idle_fraction() * 100.0),
            format!("{:.0}", result.latency.quantile(0.99) as f64 / 1e3),
        ]);
    }
    vec![table]
}

/// E11: cost of the lock-less selection phase versus a fully locked one, on
/// the threaded runqueue substrate.
fn e11_overhead() -> Vec<Table> {
    let mut table = Table::new(
        "E11: threaded runqueues — optimistic (lock-less selection) vs pessimistic (all queues locked)",
        &["cores", "optimistic ns/op", "pessimistic ns/op", "slowdown", "failure rate (concurrent round)"],
    );
    for &cores in &[4usize, 16, 64] {
        let loads: Vec<usize> = (0..cores).map(|i| if i % 4 == 0 { 6 } else { 0 }).collect();
        let policy = Policy::simple();

        let mq: MultiQueue = MultiQueue::with_loads(&loads);
        let iterations = 20_000u32;
        let start = Instant::now();
        for i in 0..iterations {
            let _ = mq.balance_once(CoreId((i as usize) % cores), &policy);
        }
        let optimistic_ns = start.elapsed().as_nanos() as f64 / f64::from(iterations);

        let mq: MultiQueue = MultiQueue::with_loads(&loads);
        let start = Instant::now();
        for i in 0..iterations {
            let _ = mq.balance_once_pessimistic(CoreId((i as usize) % cores), &policy);
        }
        let pessimistic_ns = start.elapsed().as_nanos() as f64 / f64::from(iterations);

        let mq: MultiQueue = MultiQueue::with_loads(&loads);
        let stats = mq.concurrent_round_synchronized(&policy);
        let failure_rate = if stats.attempts() == 0 {
            0.0
        } else {
            stats.failures() as f64 / stats.attempts() as f64
        };

        table.row(&[
            cores.to_string(),
            format!("{optimistic_ns:.0}"),
            format!("{pessimistic_ns:.0}"),
            format!("{:.2}x", pessimistic_ns / optimistic_ns.max(1.0)),
            format!("{:.2}", failure_rate),
        ]);
    }
    vec![table]
}

/// E12: hierarchical and NUMA-aware placement expressed in step 2, plus the
/// negative result when the hierarchy is pushed into step 1.
fn e12_hierarchical() -> Vec<Table> {
    let topo = Arc::new(eight_node());
    let mut table = Table::new(
        format!(
            "E12: one hot core per node on an 8-node ({}-core) machine — where the hierarchy lives matters",
            topo.nr_cpus()
        ),
        &["policy", "work conserving", "rounds N", "cross-node migrations", "same-node migrations"],
    );

    let variants: Vec<(&str, Policy)> = vec![
        ("flat max-load choice", Policy::simple()),
        (
            "NUMA-aware choice (step 2)",
            Policy::simple().with_choice(Box::new(NumaAwareChoice::new(
                Arc::clone(&topo),
                LoadMetric::NrThreads,
            ))),
        ),
        (
            "group-aware choice (step 2)",
            Policy::simple().with_choice(Box::new(GroupAwareChoice::new(
                Arc::clone(&topo),
                LoadMetric::NrThreads,
            ))),
        ),
        (
            "node-restricted filter (step 1, WRONG)",
            Policy::new(
                LoadMetric::NrThreads,
                Box::new(NodeRestrictedFilter::new(DeltaFilter::listing1())),
                Box::new(MaxLoadChoice::new(LoadMetric::NrThreads)),
                Box::new(StealOne),
            ),
        ),
    ];

    for (name, policy) in variants {
        let mut system = SystemState::with_topology(&topo);
        // One hot core per node holds that node's entire share of the work,
        // so every idle core has both local and remote victims to choose
        // from: the filter admits all of them, and only the step-2 choice
        // decides whether migrations stay NUMA-local.
        let nr_nodes = topo.nr_nodes();
        let per_node = 2 * topo.nr_cpus() as u64 / nr_nodes as u64;
        let mut next_task = 0u64;
        for node in 0..nr_nodes {
            let hot_core = topo.cpus_of_node(sched_topology::NodeId(node))[0];
            for _ in 0..per_node {
                system.core_mut(hot_core).enqueue(Task::new(TaskId(next_task)));
                next_task += 1;
            }
        }
        let balancer = Balancer::new(policy);
        let mut cross_node = 0u64;
        let mut same_node = 0u64;
        let mut rounds = None;
        let executor = ConcurrentRound::new(&balancer);
        let max_rounds = topo.nr_cpus() * 8;
        for round in 0..max_rounds {
            if system.is_work_conserving() {
                rounds = Some(round);
                break;
            }
            let report = executor.execute(&mut system, &RoundSchedule::AllSelectThenSteal);
            for attempt in report.successes() {
                let victim = attempt.outcome.victim().expect("successes have victims");
                if system.core(attempt.thief).node == system.core(victim).node {
                    same_node += attempt.outcome.nr_stolen() as u64;
                } else {
                    cross_node += attempt.outcome.nr_stolen() as u64;
                }
            }
        }
        if rounds.is_none() && system.is_work_conserving() {
            rounds = Some(max_rounds);
        }
        table.row(&[
            name.into(),
            if rounds.is_some() { "yes".into() } else { "NO (idle cores starve)".into() },
            rounds.map(|r| r.to_string()).unwrap_or_else(|| "never".into()),
            cross_node.to_string(),
            same_node.to_string(),
        ]);
    }

    // The negative result: when one node holds all the work, a filter that
    // refuses cross-node steals can never make the remote nodes non-idle.
    let mut negative = Table::new(
        "E12b: all work on node 0 — a node-restricted *filter* (step 1) breaks work conservation, a NUMA-aware *choice* (step 2) does not",
        &["policy", "work conserving", "rounds N", "idle cores left"],
    );
    let negative_variants: Vec<(&str, Policy)> = vec![
        (
            "NUMA-aware choice (step 2)",
            Policy::simple().with_choice(Box::new(NumaAwareChoice::new(
                Arc::clone(&topo),
                LoadMetric::NrThreads,
            ))),
        ),
        (
            "node-restricted filter (step 1, WRONG)",
            Policy::new(
                LoadMetric::NrThreads,
                Box::new(NodeRestrictedFilter::new(DeltaFilter::listing1())),
                Box::new(MaxLoadChoice::new(LoadMetric::NrThreads)),
                Box::new(StealOne),
            ),
        ),
    ];
    for (name, policy) in negative_variants {
        let mut system = SystemState::with_topology(&topo);
        for t in 0..(2 * topo.nr_cpus() as u64) {
            system.core_mut(CoreId(0)).enqueue(Task::new(TaskId(t)));
        }
        let balancer = Balancer::new(policy);
        let result =
            converge(&mut system, &balancer, RoundSchedule::AllSelectThenSteal, topo.nr_cpus() * 8);
        negative.row(&[
            name.into(),
            if result.converged() { "yes".into() } else { "NO (idle cores starve)".into() },
            result.rounds.map(|r| r.to_string()).unwrap_or_else(|| "never".into()),
            system.idle_cores().len().to_string(),
        ]);
    }
    vec![table, negative]
}

/// Renders one unified-runner record comparison as a locality table.
fn locality_table(
    title: impl Into<String>,
    rows: Vec<(&'static str, crate::runner::ExperimentRecord)>,
) -> Table {
    let mut table = Table::new(
        title,
        &[
            "policy",
            "rounds to WC",
            "migrations",
            "steals smt/llc/node/remote",
            "remote %",
            "violating idle per node",
        ],
    );
    for (name, r) in rows {
        let levels = r.locality.counts();
        table.row(&[
            name.into(),
            r.convergence_rounds.map(|n| n.to_string()).unwrap_or_else(|| "never".into()),
            r.migrations.to_string(),
            format!("{}/{}/{}/{}", levels[0], levels[1], levels[2], levels[3]),
            format!("{:.0}%", r.remote_steal_rate() * 100.0),
            r.per_node_violating_idle
                .iter()
                .map(|v| format!("{:.0}%", v * 100.0))
                .collect::<Vec<_>>()
                .join(" "),
        ]);
    }
    table
}

/// E14: a saturated NUMA node next to an idle one — the victim search must
/// cross the socket, but only as much as work conservation demands.
fn e14_numa_imbalance() -> Vec<Table> {
    use crate::runner::{ExperimentRunner, ModelBackend, PolicySpec};
    let spec = crate::catalog::spec(ExperimentId::E14);
    let runner = ExperimentRunner::new(vec![Box::new(ModelBackend)]);
    let mut rows = Vec::new();
    for (name, policy) in [
        ("flat max-load choice", PolicySpec::Listing1),
        ("NUMA-aware choice", PolicySpec::NumaAware),
        ("topology-aware (thresholds+backoff)", PolicySpec::TopoAware),
        ("hierarchical rounds", PolicySpec::Hierarchical),
    ] {
        let mut spec = spec.clone();
        spec.policy = policy;
        rows.push((name, runner.run(spec).remove(0)));
    }
    vec![locality_table(
        "E14: node 0 saturated (4 threads/core), node 1 idle — who crosses the socket, and how often",
        rows,
    )]
}

/// E15: two saturated cores on ring-distant nodes — bait for distance-blind
/// choosers, which bounce threads across the interconnect.
fn e15_cross_node_pingpong() -> Vec<Table> {
    use crate::runner::{ExperimentRunner, ModelBackend, PolicySpec};
    let spec = crate::catalog::spec(ExperimentId::E15);
    let runner = ExperimentRunner::new(vec![Box::new(ModelBackend)]);
    let mut rows = Vec::new();
    for (name, policy) in [
        ("flat max-load choice", PolicySpec::Listing1),
        ("topology-aware (thresholds+backoff)", PolicySpec::TopoAware),
        ("hierarchical rounds", PolicySpec::Hierarchical),
    ] {
        let mut spec = spec.clone();
        spec.policy = policy;
        rows.push((name, runner.run(spec).remove(0)));
    }
    vec![locality_table(
        "E15: hot cores on nodes 0 and 4 of the 8-node ring — remote steals are wasted interconnect traffic",
        rows,
    )]
}

/// E16: one hot core per node — hierarchical balancing must drain every
/// node internally, with zero cross-node migrations, on the model *and* on
/// real threads.
fn e16_hierarchical_convergence() -> Vec<Table> {
    use crate::runner::{ExperimentRunner, ModelBackend, RqBackend};
    let spec = crate::catalog::spec(ExperimentId::E16);
    let runner = ExperimentRunner::new(vec![Box::new(ModelBackend), Box::new(RqBackend)]);
    let records = runner.run(spec);
    let mut rows = Vec::new();
    for r in records {
        let name: &'static str = if r.backend == "model" {
            "hierarchical rounds (model)"
        } else {
            "hierarchical rounds (real threads)"
        };
        rows.push((name, r));
    }
    vec![locality_table(
        "E16: one hot core per NUMA node on the 8-node machine — convergence without cross-node traffic",
        rows,
    )]
}

/// E17: the bursty on/off scenario under instantaneous and PELT criteria,
/// on all three backends — the load-tracking headline number.
fn e17_bursty_tracking() -> Vec<Table> {
    use crate::runner::ExperimentRunner;
    use sched_metrics::MigrationChurn;

    let specs = crate::catalog::specs_of(ExperimentId::E17);
    let runner = ExperimentRunner::with_all_backends();
    let mut table = Table::new(
        "E17: bursty on/off load — migrations are churn; a decayed criterion avoids them at the same violating idle",
        &["criterion", "backend", "migrations", "failures", "violating idle %", "migrations/epoch"],
    );
    let mut churn: Vec<(String, MigrationChurn)> = Vec::new();
    for spec in &specs {
        for r in runner.run(spec.clone()) {
            let epochs = spec.driver.burst().map_or(0, |b| b.epochs as u64);
            let c = MigrationChurn::new(r.migrations, r.failures, epochs, r.violating_idle);
            table.row(&[
                r.tracker.clone(),
                r.backend.into(),
                r.migrations.to_string(),
                r.failures.to_string(),
                format!("{:.1}%", r.violating_idle * 100.0),
                format!("{:.2}", c.per_epoch()),
            ]);
            churn.push((format!("{}|{}", r.tracker, r.backend), c));
        }
    }
    let mut ratio = Table::new(
        "E17b: churn ratio — instantaneous migrations per PELT migration, per backend",
        &[
            "backend",
            "instantaneous migrations",
            "pelt migrations",
            "churn ratio",
            "pelt dominates",
        ],
    );
    for backend in ["model", "sim", "rq"] {
        let find = |tracker: &str| {
            churn.iter().find(|(k, _)| k == &format!("{tracker}|{backend}")).map(|(_, c)| *c)
        };
        if let (Some(inst), Some(pelt)) = (find("nr_threads"), find("pelt(nr_threads, 8ms)")) {
            ratio.row(&[
                backend.into(),
                inst.migrations.to_string(),
                pelt.migrations.to_string(),
                format!("{:.1}x", inst.churn_ratio_vs(&pelt)),
                if pelt.dominates(&inst, 0.02) { "yes".into() } else { "NO".into() },
            ]);
        }
    }
    vec![table, ratio]
}

/// E18: a mixed-niceness imbalance balanced on instantaneous weighted load
/// versus its PELT-decayed counterpart: the decayed criterion reaches the
/// same weighted balance, paying a bounded warm-up lag.
fn e18_mixed_nice_tracking() -> Vec<Table> {
    use crate::runner::{ExperimentRunner, ModelBackend, PolicySpec, RqBackend};

    let spec = crate::catalog::spec(ExperimentId::E18);
    let runner = ExperimentRunner::new(vec![Box::new(ModelBackend), Box::new(RqBackend)]);
    let mut table = Table::new(
        "E18: single hot core, 24 mixed-nice threads — weighted balance under instantaneous vs decayed tracking",
        &["criterion", "backend", "rounds to WC", "migrations", "failures"],
    );
    for policy in [PolicySpec::Weighted, PolicySpec::PeltWeighted] {
        let mut spec = spec.clone();
        spec.policy = policy;
        for r in runner.run(spec) {
            table.row(&[
                r.tracker.clone(),
                r.backend.into(),
                r.convergence_rounds.map(|n| n.to_string()).unwrap_or_else(|| "never".into()),
                r.migrations.to_string(),
                r.failures.to_string(),
            ]);
        }
    }
    vec![table]
}

/// Measures the balancing and tick hot paths of one runqueue discipline
/// under one tracker: ns per lock-less `balance_once` and ns per core per
/// tick, on a 64-core machine with every fourth core hot.
fn measure_rq_overhead<B: sched_rq::RqBackend>(
    tracker: std::sync::Arc<dyn sched_core::LoadTracker>,
    policy: &Policy,
) -> (f64, f64) {
    use sched_rq::MultiQueue;

    let loads: Vec<usize> = (0..64).map(|i| if i % 4 == 0 { 6 } else { 0 }).collect();
    let mq: MultiQueue<B> = MultiQueue::with_tracker(loads.len(), tracker);
    for (core, &n) in loads.iter().enumerate() {
        for _ in 0..n {
            mq.spawn_on(CoreId(core));
        }
    }
    mq.tick(64_000_000);

    let iterations = 20_000u32;
    let start = Instant::now();
    for i in 0..iterations {
        let _ = mq.balance_once(CoreId((i as usize) % loads.len()), policy);
    }
    let balance_ns = start.elapsed().as_nanos() as f64 / f64::from(iterations);

    let ticks = 200u32;
    let start = Instant::now();
    for i in 0..ticks {
        mq.tick(64_000_000 + u64::from(i + 1) * 1_000_000);
    }
    let tick_ns = start.elapsed().as_nanos() as f64 / f64::from(ticks) / loads.len() as f64;
    (balance_ns, tick_ns)
}

/// Measures the **owner path** — one wakeup enqueue plus one completion on
/// the core's own runqueue — while `thieves` other cores bombard that core
/// with concurrent steal attempts from real OS threads.
///
/// On the mutex backend every owner operation serialises with the thieves
/// on the per-core lock; on the lock-free backend the owner touches only
/// its own bottom end and never waits for a thief.  Returns ns per owner
/// operation (enqueue or complete).
fn measure_owner_path<B: sched_rq::RqBackend>(thieves: usize, iterations: u32) -> f64 {
    use std::sync::atomic::{AtomicBool, Ordering};

    use sched_rq::MultiQueue;

    let mq: MultiQueue<B> = MultiQueue::new(1 + thieves);
    for _ in 0..64 {
        mq.spawn_on(CoreId(0));
    }
    let policy = Policy::simple();
    let stop = AtomicBool::new(false);
    let mut owner_ns = 0.0;
    std::thread::scope(|scope| {
        for thief in 1..=thieves {
            let mq = &mq;
            let policy = &policy;
            let stop = &stop;
            scope.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let _ = mq.balance_once(CoreId(thief), policy);
                    // Stay hungry: immediately retire whatever was stolen
                    // so the filter keeps selecting the producer core.
                    while mq.core(CoreId(thief)).complete_current().is_some() {}
                }
            });
        }
        // Time only the owner-path pairs; the periodic producer top-up
        // happens *between* timed chunks, because how much refilling is
        // needed depends on how fast the thieves steal — a
        // backend-dependent amount that must not bias the comparison.
        let mut timed = std::time::Duration::ZERO;
        let mut done = 0u32;
        while done < iterations {
            let chunk = 64.min(iterations - done);
            let start = Instant::now();
            for _ in 0..chunk {
                // The owner path: one wakeup, one completion, on its own
                // core.
                mq.spawn_on(CoreId(0));
                let _ = mq.core(CoreId(0)).complete_current();
            }
            timed += start.elapsed();
            done += chunk;
            // Top the producer back up so the thieves never run dry.
            while mq.core(CoreId(0)).nr_threads_exact() < 64 {
                mq.spawn_on(CoreId(0));
            }
        }
        owner_ns = timed.as_nanos() as f64 / f64::from(2 * iterations);
        stop.store(true, Ordering::Release);
    });
    owner_ns
}

/// E19: what the trackers cost on the balancing hot path, per runqueue
/// discipline — the backend axis added with `sched-deque`.  The owner
/// column is measured under 4 contending thieves: the lock-free backend's
/// owner path must beat the mutex backend's (the acceptance number the
/// E19 regression test pins).
fn e19_tracker_overhead() -> Vec<Table> {
    use std::sync::Arc as StdArc;

    let mut table = Table::new(
        "E19: tracker overhead by runqueue backend — 64 threaded runqueues, owner path under 4 thieves",
        &["tracker", "rq backend", "balance ns/op", "owner ns/op (contended)", "tick ns/core"],
    );
    type TrackerCtor = fn() -> StdArc<dyn sched_core::LoadTracker>;
    let trackers: Vec<(TrackerCtor, fn() -> Policy)> = vec![
        (|| StdArc::new(sched_core::NrThreadsTracker), Policy::simple),
        (
            || StdArc::new(sched_core::PeltTracker::new(LoadMetric::NrThreads, 8_000_000)),
            || Policy::pelt(8_000_000),
        ),
    ];
    for (make_tracker, make_policy) in trackers {
        let policy = make_policy();
        for backend in ["mutex", "deque"] {
            let (balance_ns, tick_ns, owner_ns) = match backend {
                "mutex" => {
                    let (b, t) = measure_rq_overhead::<sched_rq::PerCoreRq<sched_rq::FifoQueue>>(
                        make_tracker(),
                        &policy,
                    );
                    (b, t, measure_owner_path::<sched_rq::PerCoreRq<sched_rq::FifoQueue>>(4, 4_000))
                }
                _ => {
                    let (b, t) = measure_rq_overhead::<sched_rq::DequeRq>(make_tracker(), &policy);
                    (b, t, measure_owner_path::<sched_rq::DequeRq>(4, 4_000))
                }
            };
            table.row(&[
                make_tracker().name(),
                backend.into(),
                format!("{balance_ns:.0}"),
                format!("{owner_ns:.0}"),
                format!("{tick_ns:.0}"),
            ]);
        }
    }
    vec![table]
}

/// E20: the steal-heavy fan-out — one producer core, a wall of thieves.
/// Compares the two runqueue disciplines where they differ most: the
/// producer's own enqueue/dequeue path while being robbed.
fn e20_steal_fanout() -> Vec<Table> {
    type MutexRq = sched_rq::PerCoreRq<sched_rq::FifoQueue>;

    let mut table = Table::new(
        "E20: steal-heavy fan-out — owner-path cost while thieves bombard the producer core",
        &["rq backend", "owner ns/op (quiet)", "owner ns/op (4 thieves)", "contention slowdown"],
    );
    for backend in ["mutex", "deque"] {
        let (quiet, contended) = match backend {
            "mutex" => {
                (measure_owner_path::<MutexRq>(0, 8_000), measure_owner_path::<MutexRq>(4, 8_000))
            }
            _ => (
                measure_owner_path::<sched_rq::DequeRq>(0, 8_000),
                measure_owner_path::<sched_rq::DequeRq>(4, 8_000),
            ),
        };
        table.row(&[
            backend.into(),
            format!("{quiet:.0}"),
            format!("{contended:.0}"),
            format!("{:.2}x", contended / quiet.max(1.0)),
        ]);
    }
    vec![table]
}

/// E21: the PELT half-life sensitivity sweep — both sides of the
/// trade-off, per half-life:
///
/// * **E21a (churn)**: E17's bursty on/off shape with 4 ms blips; a
///   half-life shorter than the blip forgets the sleeping core and
///   migrates (pure churn), longer ones hold still.
/// * **E21b (warm-up lag)**: a *real* imbalance (one hot core of 8)
///   under a cold tracker; the rounds until the decayed view admits the
///   imbalance and the machine converges grow with the half-life — the
///   reactivity cost an over-long half-life pays.
fn e21_half_life_sweep() -> Vec<Table> {
    use crate::runner::{ExperimentRunner, ModelBackend, PolicySpec, RqBackend, TopoSpec};
    use sched_metrics::MigrationChurn;

    let specs = crate::catalog::specs_of(ExperimentId::E21);
    let runner = ExperimentRunner::new(vec![Box::new(ModelBackend), Box::new(RqBackend)]);
    let mut churn_table = Table::new(
        "E21a: PELT half-life sweep against 4ms bursts — churn vs violating idle per half-life",
        &["half-life", "backend", "migrations", "failures", "violating idle %", "migrations/epoch"],
    );
    for spec in &specs {
        for r in runner.run(spec.clone()) {
            let epochs = spec.driver.burst().map_or(0, |b| b.epochs as u64);
            let churn = MigrationChurn::new(r.migrations, r.failures, epochs, r.violating_idle);
            churn_table.row(&[
                r.tracker.clone(),
                r.backend.into(),
                r.migrations.to_string(),
                r.failures.to_string(),
                format!("{:.1}%", r.violating_idle * 100.0),
                format!("{:.2}", churn.per_epoch()),
            ]);
        }
    }

    let mut lag_table = Table::new(
        "E21b: warm-up lag — rounds (1ms each) for a cold tracker to admit a real single-hot imbalance, model backend",
        &["half-life", "rounds to WC", "migrations"],
    );
    let model = ExperimentRunner::new(vec![Box::new(ModelBackend)]);
    for half_life_ms in [1u32, 4, 16, 64] {
        let spec = crate::runner::ExperimentSpec::builder(
            ExperimentId::E21,
            "half-life sweep: warm-up lag",
        )
        .loads(vec![16, 0, 0, 0, 0, 0, 0, 0])
        .topo(TopoSpec::Flat(8))
        .policy(PolicySpec::PeltHalfLife(half_life_ms))
        .budget_rounds(1024)
        .build()
        .expect("a valid warm-up-lag spec");
        let r = model.run(spec).remove(0);
        lag_table.row(&[
            r.tracker.clone(),
            r.convergence_rounds.map(|n| n.to_string()).unwrap_or_else(|| "never".into()),
            r.migrations.to_string(),
        ]);
    }
    vec![churn_table, lag_table]
}

/// E22: the overflow storm — fan-out bursts against tiny Chase–Lev rings,
/// so nearly every enqueue overflows.  The four rows isolate *where* the
/// overflow goes:
///
/// * `rq` (mutex) and `rq-deque` (1024-slot ring) are the no-overflow
///   controls — everything waiting is reachable, idle-while-spilled ~0;
/// * `rq-deque-tiny` overflows into the shared injector — thieves claim
///   the overflow the moment it lands, idle-while-spilled ~0 (the fix);
/// * `rq-deque-spill` reproduces the pre-injector owner-private spill —
///   counted-but-unstealable work strands ~7 of 16 cores for the rest of
///   every epoch (the hole, kept measurable as the baseline).
fn e22_overflow_storm() -> Vec<Table> {
    use crate::runner::ExperimentRunner;
    use sched_metrics::MigrationChurn;

    let spec = crate::catalog::spec(ExperimentId::E22);
    let runner = ExperimentRunner::with_all_backends();
    let mut table = Table::new(
        "E22: overflow storm — fan-out bursts on tiny rings; where the overflow goes decides \
         whether idle cores can reach it",
        &["rq backend", "migrations", "failures", "idle-while-spilled %", "migrations/epoch"],
    );
    let epochs = spec.driver.storm().map_or(0, |s| s.epochs as u64);
    for r in runner.run(spec) {
        let churn = MigrationChurn::new(r.migrations, r.failures, epochs, r.violating_idle);
        table.row(&[
            r.rq_backend.unwrap_or(r.backend).into(),
            r.migrations.to_string(),
            r.failures.to_string(),
            format!("{:.1}%", r.violating_idle * 100.0),
            format!("{:.2}", churn.per_epoch()),
        ]);
    }
    vec![table]
}

/// E23: the steal-batch sweep — how many threads one queue acquisition
/// should claim.  `k = 1` is Listing 1's `stealOneThread` baseline: every
/// migration pays a full CAS (or lock round-trip) of its own.  Fixed
/// batches amortise that cost k-fold until they overshoot the imbalance;
/// `half` sizes the batch from the observed thief/victim gap, which is the
/// largest transfer that cannot invert it.  Run on both acquisition-bound
/// shapes (E20's fan-out and E22's overflow storm) across every runqueue
/// backend; the headline column is tasks per successful acquisition.
fn e23_batched_stealing() -> Vec<Table> {
    use crate::runner::ExperimentRunner;

    let specs = crate::catalog::specs_of(ExperimentId::E23);
    let runner = ExperimentRunner::with_all_backends();
    let mut table = Table::new(
        "E23: batched stealing — claims per acquisition and the amortisation it buys, per batch \
         size",
        &[
            "shape",
            "rq backend",
            "k",
            "migrations",
            "failures",
            "tasks/acquisition",
            "violating idle %",
        ],
    );
    for spec in &specs {
        for r in runner.run(spec.clone()) {
            table.row(&[
                if spec.driver.storm().is_some() { "storm".into() } else { "fan-out".into() },
                r.rq_backend.unwrap_or(r.backend).into(),
                r.steal_batch_k.unwrap_or("?").into(),
                r.migrations.to_string(),
                r.failures.to_string(),
                r.tasks_per_acquisition.map(|t| format!("{t:.2}")).unwrap_or_else(|| "-".into()),
                format!("{:.1}%", r.violating_idle * 100.0),
            ]);
        }
    }
    vec![table]
}

/// E24: event-driven simulation at scale — one million mostly-sleeping
/// tasks with sparse compute bursts on 256 flat cores.  The tick engine
/// pays `cores × horizon / timeslice` timer events whether or not anything
/// is runnable, so it exhausts the scenario's declared event budget long
/// before the 20-second sleeps expire (its row records exactly the cap);
/// the event engine pays two events per sleeping task plus a handful per
/// burst and finishes with most of the budget unspent.  This is the
/// asymptotic claim of ROADMAP item 1 as a table: the ratio of the two
/// `events processed` columns is the work the calendar queue never does.
fn e24_event_engine_scaling() -> Vec<Table> {
    use crate::runner::ExperimentRunner;

    let spec = crate::catalog::spec(ExperimentId::E24);
    let budget = spec.events.expect("e24 declares an event budget");
    let runner = ExperimentRunner::with_all_backends();
    let mut table = Table::new(
        "E24: event-driven simulation — events to run 1M mostly-sleeping tasks (the budget caps \
         the tick engine)",
        &["engine", "events processed", "event budget", "outcome", "wall ms"],
    );
    for r in runner.run(spec) {
        let events = r.events_processed.unwrap_or(0);
        table.row(&[
            r.sim_engine.unwrap_or(r.backend).into(),
            events.to_string(),
            budget.to_string(),
            if events >= budget { "capped: budget exhausted".into() } else { "finished".into() },
            format!("{:.1}", r.wall_ms),
        ]);
    }
    vec![table]
}

/// E25: the conservation hole found from a trace alone.  Both tiny-ring
/// flavours run the identical overflow storm with a recording sink
/// attached; the sanity checker then reads nothing but the drained
/// decision stream — no counters, no snapshots, no knowledge of which
/// overflow discipline produced it.  On the private-spill baseline the
/// overflowed tasks are invisible to thieves, so idle cores rack up
/// consecutive empty-handed steal attempts against a victim whose derived
/// occupancy shows plenty of waiting work, and the checker flags
/// idle-while-overloaded windows with the offending event span.  On the
/// injector flavour every overflowed task stays reachable — the storm is
/// sized so the injector never runs dry mid-epoch — and the same checker
/// stays silent.
fn e25_trace_sanity() -> Vec<Table> {
    use crate::runner::run_rq_traced;
    use sched_rq::{TinyDequeRq, TinySpillDequeRq};
    use sched_trace::{SanityChecker, SanityKind};

    let spec = crate::catalog::spec(ExperimentId::E25);
    let mut table = Table::new(
        "E25: trace-only detection — idle-while-overloaded windows flagged by the sanity checker",
        &["overflow discipline", "events", "dropped", "flagged windows", "verdict"],
    );
    let runs = [
        ("injector", run_rq_traced::<TinyDequeRq>("rq-deque-tiny", &spec)),
        ("private spill", run_rq_traced::<TinySpillDequeRq>("rq-deque-spill", &spec)),
    ];
    for (flavour, run) in runs {
        let (_, trace) = run.expect("the storm scenario runs on the tiny backends");
        let windows = SanityChecker::check_trace(&trace, false, None)
            .into_iter()
            .filter(|v| v.kind == SanityKind::IdleWhileOverloaded)
            .count();
        table.row(&[
            flavour.into(),
            trace.events.len().to_string(),
            trace.dropped.to_string(),
            windows.to_string(),
            if windows == 0 {
                "clean: every overflowed task stayed reachable".into()
            } else {
                "hole: idle cores starved beside hidden work".into()
            },
        ]);
    }
    vec![table]
}

/// E26: the open-loop latency ladder on the real executor.  Each
/// catalogued rung offers a fixed Poisson arrival rate to
/// [`sched_exec::Executor`] — OS worker threads on the verified
/// ring+injector runqueues, parking when idle — and measures wall-clock
/// end-to-end latency per request.  Every rung sits below the saturation
/// knee, so the measured p99/p999 is queueing-plus-wakeup cost, not
/// overload collapse; alongside the latency columns the drained decision
/// trace is fed to the sanity checker, which must find zero
/// idle-while-overloaded windows — parked workers may never sleep beside
/// reachable work.
fn e26_executor_ladder() -> Vec<Table> {
    use crate::runner::run_exec_traced;
    use sched_trace::{SanityChecker, SanityKind};

    let mut table = Table::new(
        "E26: open-loop latency ladder on the real executor (wall-clock end-to-end)",
        &[
            "rung",
            "rate (req/s)",
            "submitted",
            "completed",
            "migrations",
            "e2e p99 (us)",
            "e2e p999 (us)",
            "IWO windows",
        ],
    );
    for spec in crate::catalog::specs_of(ExperimentId::E26) {
        let (record, trace) = run_exec_traced(&spec).expect("the ladder runs on the executor");
        let windows = SanityChecker::check_trace(&trace, false, None)
            .into_iter()
            .filter(|v| v.kind == SanityKind::IdleWhileOverloaded)
            .count();
        let rate = spec.driver.openloop().expect("E26 rungs are open-loop").rate_hz;
        table.row(&[
            spec.scenario.clone(),
            rate.to_string(),
            record.threads.to_string(),
            format!("{:.0}", record.throughput * record.wall_ms / 1e3),
            record.migrations.to_string(),
            format!("{:.0}", record.e2e_p99_us.expect("exec records measure e2e latency")),
            format!("{:.0}", record.e2e_p999_us.expect("exec records measure e2e latency")),
            windows.to_string(),
        ]);
    }
    vec![table]
}

/// E13: the DSL front-end, its phase checker and its two backends.
fn e13_dsl() -> Vec<Table> {
    let scope = Scope::small();
    let mut table = Table::new(
        "E13: DSL policies through the phase checker, the verifier and the code generator",
        &["policy (DSL)", "phase warnings", "work conserving", "generated Rust lines"],
    );
    for (name, source) in sched_dsl::stdlib::all() {
        let compiled = sched_dsl::compile_source(source).expect("stdlib policies compile");
        let generated = sched_dsl::generate_rust(&compiled.def);
        let verified = sched_dsl::verify_source(source, &scope).expect("stdlib policies verify");
        table.row(&[
            name.into(),
            compiled.warnings.len().to_string(),
            verdict(verified.is_work_conserving()),
            generated.lines().count().to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_parse_and_have_titles() {
        assert_eq!(ExperimentId::parse("e5"), Some(ExperimentId::E5));
        assert_eq!(ExperimentId::parse("E13"), Some(ExperimentId::E13));
        assert_eq!(ExperimentId::parse("e16"), Some(ExperimentId::E16));
        assert_eq!(ExperimentId::parse("e19"), Some(ExperimentId::E19));
        assert_eq!(ExperimentId::parse("e20"), Some(ExperimentId::E20));
        assert_eq!(ExperimentId::parse("E21"), Some(ExperimentId::E21));
        assert_eq!(ExperimentId::parse("e22"), Some(ExperimentId::E22));
        assert_eq!(ExperimentId::parse("e23"), Some(ExperimentId::E23));
        assert_eq!(ExperimentId::parse("e24"), Some(ExperimentId::E24));
        assert_eq!(ExperimentId::parse("e25"), Some(ExperimentId::E25));
        assert_eq!(ExperimentId::parse("e26"), Some(ExperimentId::E26));
        assert_eq!(ExperimentId::parse("nope"), None);
        assert_eq!(ExperimentId::all().len(), 26);
        for id in ExperimentId::all() {
            assert!(!id.title().is_empty());
        }
    }

    /// The overflow-conservation acceptance claim: on the storm scenario,
    /// the injector-backed tiny backend pins idle-while-spilled at ~0 —
    /// every overflowed task was reachable within its round — while the
    /// legacy private-spill baseline reproduces a large, persistent gap,
    /// and strands idle cores that the injector turns into migrations.
    #[test]
    fn e22_injector_closes_the_overflow_conservation_hole() {
        let spec = crate::catalog::spec(ExperimentId::E22);
        let runner = crate::runner::ExperimentRunner::with_all_backends();
        let records = runner.run(spec);
        let flavours: Vec<Option<&str>> = records.iter().map(|r| r.rq_backend).collect();
        assert_eq!(
            flavours,
            vec![Some("mutex"), Some("deque"), Some("deque-tiny"), Some("deque-spill")],
            "the storm runs on the rq backends only (model/sim have no ring)"
        );
        let find = |flavour: &str| {
            records.iter().find(|r| r.rq_backend == Some(flavour)).expect("flavour present")
        };
        let injector = find("deque-tiny");
        let spill = find("deque-spill");
        assert!(
            injector.violating_idle < 0.02,
            "injector-backed overflow must keep idle-while-spilled at ~0, got {:.3}",
            injector.violating_idle
        );
        assert!(
            spill.violating_idle > 0.2,
            "the legacy spill must reproduce the conservation hole, got {:.3}",
            spill.violating_idle
        );
        assert!(
            injector.migrations > spill.migrations,
            "stealable overflow must turn stranded idling into migrations ({} vs {})",
            injector.migrations,
            spill.migrations
        );
        // The no-overflow controls agree with the injector row: hiding
        // overflow is the only thing that opens the gap.
        for control in ["mutex", "deque"] {
            assert!(
                find(control).violating_idle < 0.02,
                "{control}: a ring that never overflows has nothing to hide"
            );
        }
    }

    /// The trace-only acceptance claim: on the E25 storm the sanity
    /// checker flags the private-spill conservation hole from the decision
    /// trace alone — no counters, no snapshots — while the injector
    /// flavour's trace of the identical storm comes back clean.
    #[test]
    fn e25_checker_flags_the_spill_hole_from_the_trace_alone() {
        use crate::runner::run_rq_traced;
        use sched_rq::{TinyDequeRq, TinySpillDequeRq};
        use sched_trace::{SanityChecker, SanityKind};

        let spec = crate::catalog::spec(ExperimentId::E25);
        let (_, clean) =
            run_rq_traced::<TinyDequeRq>("rq-deque-tiny", &spec).expect("the storm runs");
        let (_, holed) =
            run_rq_traced::<TinySpillDequeRq>("rq-deque-spill", &spec).expect("the storm runs");
        assert_eq!(clean.dropped, 0, "the storm must fit the rings for a meaningful verdict");
        assert_eq!(holed.dropped, 0);
        let windows = |trace: &sched_trace::Trace| -> Vec<_> {
            SanityChecker::check_trace(trace, false, None)
                .into_iter()
                .filter(|v| v.kind == SanityKind::IdleWhileOverloaded)
                .collect()
        };
        assert_eq!(windows(&clean).len(), 0, "a conserving overflow discipline must trace clean");
        let flagged = windows(&holed);
        assert!(!flagged.is_empty(), "the spill hole must be visible from the trace alone");
        for violation in &flagged {
            assert!(
                violation.last_event > violation.first_event,
                "a flagged window carries its offending event span"
            );
            assert!(!violation.excerpt(&holed, 2).is_empty());
        }
    }

    /// The executor acceptance claim: every E26 rung sits below the
    /// saturation knee, so (a) the generator's full schedule is submitted
    /// and completed, (b) the measured end-to-end p999 stays well below
    /// the run horizon — an overloaded executor's tail grows toward the
    /// full duration as requests queue behind the backlog — and (c) the
    /// drained decision trace carries zero idle-while-overloaded windows:
    /// a parked worker never slept beside reachable work.
    #[test]
    fn e26_ladder_stays_below_the_knee_with_no_idle_while_overloaded() {
        use crate::runner::run_exec_traced;
        use sched_trace::{SanityChecker, SanityKind};

        let specs = crate::catalog::specs_of(ExperimentId::E26);
        assert_eq!(specs.len(), 3, "the ladder has three rungs");
        for spec in specs {
            let openloop = spec.driver.openloop().expect("E26 rungs are open-loop");
            let (record, trace) = run_exec_traced(&spec).expect("the ladder runs");
            assert_eq!(trace.dropped, 0, "{}: the sink must capture every event", spec.scenario);
            assert!(record.threads > 0, "{}: the generator submitted requests", spec.scenario);
            let p999 = record.e2e_p999_us.expect("exec records measure e2e latency");
            let p99 = record.e2e_p99_us.expect("exec records measure e2e latency");
            assert!(p99 <= p999, "{}: quantiles are ordered", spec.scenario);
            // Below the knee the tail is queueing-plus-wakeup jitter; at
            // or past it, requests queue behind an ever-growing backlog
            // and the p999 climbs toward the full horizon.
            let horizon_us = openloop.duration_ms as f64 * 1e3;
            assert!(
                p999 < horizon_us / 2.0,
                "{}: p999 of {p999}us has collapsed toward the {horizon_us}us horizon",
                spec.scenario
            );
            let windows: Vec<_> = SanityChecker::check_trace(&trace, false, None)
                .into_iter()
                .filter(|v| v.kind == SanityKind::IdleWhileOverloaded)
                .collect();
            assert!(
                windows.is_empty(),
                "{}: a parked worker slept beside reachable work: {:?}",
                spec.scenario,
                windows
            );
        }
    }

    /// The batching acceptance claim, shape-level: on the steal-heavy
    /// fan-out, `k = 1` pays one acquisition per migrated thread by
    /// definition (tasks/acquisition exactly 1.0), while the batched sweep
    /// points amortise — strictly more than one thread moves per successful
    /// claim.  Counts, not wall clock, so this runs in the default pass.
    #[test]
    fn e23_batching_amortises_acquisitions_on_the_fan_out() {
        use crate::runner::{BatchK, ExperimentRunner, RqDequeBackend};

        let specs: Vec<crate::runner::ExperimentSpec> = crate::catalog::specs_of(ExperimentId::E23)
            .into_iter()
            .filter(|s| s.driver.storm().is_none())
            .collect();
        assert_eq!(specs.len(), 5, "the fan-out half of the sweep");
        let runner = ExperimentRunner::new(vec![Box::new(RqDequeBackend)]);
        let tpa = |batch: BatchK| -> f64 {
            let spec = specs.iter().find(|s| s.batch == Some(batch)).expect("swept k");
            let record = runner.run(spec.clone()).remove(0);
            assert_eq!(record.steal_batch_k, Some(batch.name()));
            record.tasks_per_acquisition.expect("batch records measure the amortisation")
        };
        let baseline = tpa(BatchK::Fixed(1));
        assert!(
            (baseline - 1.0).abs() < 1e-9,
            "k=1 moves exactly one thread per acquisition, got {baseline}"
        );
        for batch in [BatchK::Fixed(8), BatchK::HalfImbalance] {
            let batched = tpa(batch);
            assert!(
                batched > 1.0,
                "{}: batched claims must amortise acquisitions, got {batched:.2} \
                 tasks/acquisition vs the k=1 baseline of 1.0",
                batch.name()
            );
        }
    }

    /// The batching throughput claim: sizing transfers from the imbalance
    /// converges the fan-out in fewer (and cheaper) acquisitions, which
    /// shows up as wall-clock throughput.  Wall-clock comparisons on shared
    /// runners are noisy, so — like the E19/E20 owner-path check — this is
    /// quarantined in CI's `deque-stress` job (release, `-- --ignored`),
    /// best-of-three per sweep point.
    #[test]
    #[ignore = "wall-clock comparison; run via `cargo test --release -- --ignored`"]
    fn e23_batched_stealing_raises_fan_out_throughput() {
        use crate::runner::{BatchK, ExperimentRunner, RqDequeBackend};

        let specs: Vec<crate::runner::ExperimentSpec> = crate::catalog::specs_of(ExperimentId::E23)
            .into_iter()
            .filter(|s| s.driver.storm().is_none())
            .collect();
        let runner = ExperimentRunner::new(vec![Box::new(RqDequeBackend)]);
        let best = |batch: BatchK| -> f64 {
            let spec = specs.iter().find(|s| s.batch == Some(batch)).expect("swept k");
            (0..3).map(|_| runner.run(spec.clone()).remove(0).throughput).fold(0.0, f64::max)
        };
        let k1 = best(BatchK::Fixed(1));
        let half = best(BatchK::HalfImbalance);
        assert!(
            half > k1,
            "imbalance-sized batches must beat one-thread steals on the fan-out: \
             {half:.0} vs {k1:.0} migrations/s"
        );
    }

    #[test]
    fn e17_pelt_dominates_instantaneous_balancing_on_every_backend() {
        // The load-tracking acceptance claim: on the bursty on/off scenario
        // the PELT criterion performs measurably fewer migrations than
        // instantaneous nr-threads balancing at equal-or-better violating
        // idle — on the simulator AND on the real-thread runqueues.
        let specs = crate::catalog::specs_of(ExperimentId::E17);
        assert_eq!(specs.len(), 2);
        let runner = crate::runner::ExperimentRunner::with_all_backends();
        let records: Vec<crate::runner::ExperimentRecord> =
            specs.into_iter().flat_map(|s| runner.run(s)).collect();
        for backend in ["model", "sim", "rq"] {
            let find = |tracker: &str| {
                records
                    .iter()
                    .find(|r| r.backend == backend && r.tracker == tracker)
                    .unwrap_or_else(|| panic!("missing {tracker} record for {backend}"))
            };
            let inst = find("nr_threads");
            let pelt = find("pelt(nr_threads, 8ms)");
            assert!(
                pelt.migrations * 2 < inst.migrations,
                "{backend}: PELT must at least halve the churn ({} vs {})",
                pelt.migrations,
                inst.migrations
            );
            assert!(
                pelt.violating_idle <= inst.violating_idle + 0.02,
                "{backend}: PELT idle {:.3} must not exceed instantaneous idle {:.3}",
                pelt.violating_idle,
                inst.violating_idle
            );
        }
    }

    #[test]
    fn e18_and_e19_produce_tables() {
        let tables = run_experiment(ExperimentId::E18);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].nr_rows(), 4, "two criteria x two backends");
        let csv = tables[0].to_csv();
        assert!(
            csv.lines().skip(1).all(|l| !l.contains("never")),
            "both criteria converge:\n{csv}"
        );
        let tables = run_experiment(ExperimentId::E19);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].nr_rows(), 4, "two trackers x two runqueue backends");
    }

    /// The lock-free acceptance number: with thieves hammering the
    /// producer core, the deque backend's owner path (enqueue + complete
    /// on its own queue) must be cheaper than the mutex backend's, which
    /// serialises every owner operation against the thieves.
    ///
    /// A wall-clock comparison on shared runners is inherently noisy, so
    /// this is quarantined with the other timing-sensitive checks: CI's
    /// `deque-stress` job runs it (release, `-- --ignored`) instead of
    /// the default debug test pass.
    #[test]
    #[ignore = "wall-clock comparison; run via `cargo test --release -- --ignored`"]
    fn e19_e20_deque_owner_path_beats_the_mutex_under_contention() {
        type MutexRq = sched_rq::PerCoreRq<sched_rq::FifoQueue>;
        // Best-of-three per backend: a single OS preemption inside one
        // timed chunk would otherwise swamp the ~2x margin on a shared
        // runner; the minimum is the preemption-immune estimator of what
        // each discipline's owner path actually costs.
        let best = |measure: fn(usize, u32) -> f64| {
            (0..3).map(|_| measure(4, 4_000)).fold(f64::INFINITY, f64::min)
        };
        let mutex_ns = best(measure_owner_path::<MutexRq>);
        let deque_ns = best(measure_owner_path::<sched_rq::DequeRq>);
        assert!(
            deque_ns < mutex_ns,
            "owner path under contention: deque {deque_ns:.0} ns/op must beat mutex \
             {mutex_ns:.0} ns/op"
        );
    }

    #[test]
    fn e21_sweep_discriminates_half_lives_on_both_axes() {
        let tables = run_experiment(ExperimentId::E21);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].nr_rows(), 8, "four half-lives x two backends");
        let churn_csv = tables[0].to_csv();
        for half_life in ["1ms", "4ms", "16ms", "64ms"] {
            assert!(churn_csv.contains(half_life), "missing {half_life} row:\n{churn_csv}");
        }
        // The churn axis: a 1ms half-life forgets a 4ms blip and churns on
        // the deterministic model backend; 4ms and longer hold still.
        let migrations = |row_prefix: &str| -> u64 {
            churn_csv
                .lines()
                .find(|l| l.starts_with(row_prefix) && l.contains("model"))
                // The tracker name itself contains a comma, so count
                // fields from the end: .., migrations, failures, idle, per-epoch.
                .and_then(|l| l.rsplit(',').nth(3))
                .and_then(|m| m.parse().ok())
                .unwrap_or_else(|| panic!("no model row for {row_prefix}:\n{churn_csv}"))
        };
        assert!(migrations("pelt(nr_threads, 1ms)") > 0, "1ms half-life must churn");
        assert_eq!(migrations("pelt(nr_threads, 16ms)"), 0, "16ms half-life must hold still");
        // The responsiveness axis: warm-up lag grows with the half-life.
        let lag_csv = tables[1].to_csv();
        let lag = |row_prefix: &str| -> u64 {
            lag_csv
                .lines()
                .find(|l| l.starts_with(row_prefix))
                .and_then(|l| l.rsplit(',').nth(1))
                .and_then(|m| m.parse().ok())
                .unwrap_or_else(|| panic!("no lag row for {row_prefix}:\n{lag_csv}"))
        };
        assert!(
            lag("pelt(nr_threads, 1ms)") < lag("pelt(nr_threads, 64ms)"),
            "a longer half-life must pay a longer warm-up lag"
        );
    }

    #[test]
    fn e14_compares_four_policies() {
        let tables = run_experiment(ExperimentId::E14);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].nr_rows(), 4);
    }

    #[test]
    fn e16_reports_zero_remote_steals_on_the_model() {
        // Only the model row is deterministic; the real-thread row may pick
        // up a rare race-induced remote fallback steal.
        let tables = run_experiment(ExperimentId::E16);
        let csv = tables[0].to_csv();
        let model_row = csv.lines().find(|l| l.contains("(model)")).expect("model row");
        assert!(model_row.contains(",0%,"), "remote rate must be 0% in: {model_row}");
    }

    #[test]
    fn e2_and_e7_produce_tables_quickly() {
        let tables = run_experiment(ExperimentId::E2);
        assert_eq!(tables.len(), 1);
        assert!(tables[0].nr_rows() >= 6);
        let tables = run_experiment(ExperimentId::E7);
        assert_eq!(tables.len(), 2);
    }

    #[test]
    fn e5_finds_the_pingpong_for_greedy_only() {
        let tables = run_experiment(ExperimentId::E5);
        let csv = tables[0].to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[1].starts_with("greedy") && lines[1].contains("YES"));
        assert!(lines[2].starts_with("listing1") && lines[2].contains("no"));
    }

    #[test]
    fn e9_shows_the_buggy_baseline_losing() {
        let tables = run_experiment(ExperimentId::E9);
        let csv = tables[0].to_csv();
        let buggy_row = csv.lines().last().unwrap();
        let slowdown: f64 =
            buggy_row.split(',').nth(2).unwrap().trim_end_matches('x').parse().unwrap();
        assert!(
            slowdown > 1.3,
            "the wasted-cores bugs should visibly slow the fork-join workload, got {slowdown}"
        );
    }

    #[test]
    fn e13_verifies_listing1_and_refutes_greedy() {
        let tables = run_experiment(ExperimentId::E13);
        let csv = tables[0].to_csv();
        assert!(csv.lines().any(|l| l.starts_with("listing1") && l.contains("proved")));
        assert!(csv.lines().any(|l| l.starts_with("greedy") && l.contains("REFUTED")));
    }
}
