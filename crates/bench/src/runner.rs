//! The unified experiment runner: one declarative scenario description,
//! three execution backends.
//!
//! The paper's claims live at three altitudes — the abstract model
//! (`sched-core` balancing rounds), a discrete-event machine (`sched-sim`)
//! and real contending OS threads (`sched-rq`).  Historically each
//! experiment hand-rolled its own driver for one altitude; this module
//! declares every experiment **once** as an [`ExperimentSpec`] and executes
//! it against any [`Backend`], so a scenario measured in the model can be
//! re-measured, unchanged, on the simulator and on real threads.
//!
//! Specs themselves are *data*: the catalog loads them from declarative
//! `experiments/*.scn` documents (see [`mod@crate::catalog`]), and
//! [`ExperimentSpec::builder`] is the validating way to construct one in
//! code.  How work arrives is a single [`Driver`] value — replay, workload,
//! burst or storm — so a spec cannot carry two contradictory drivers.
//!
//! [`ExperimentRunner::run_catalog`] produces flat [`ExperimentRecord`]s;
//! the `experiments --json` binary serializes them to `BENCH_results.json`,
//! which is the machine-readable perf trajectory later PRs regress against.

use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use sched_core::prelude::*;
use sched_dsl::PolicyDef;
use sched_metrics::{StealLocality, Table};
use sched_rq::MultiQueue;
use sched_topology::{MachineTopology, NodeId, TopologyBuilder};
use sched_workloads::{
    OltpWorkload, Phase as WorkloadPhase, ScientificWorkload, ThreadSpec, Workload,
};

use sched_json::{object, JsonValue};

use crate::experiments::ExperimentId;

/// CPU time given to each synthetic task when a load-vector scenario is
/// replayed on the simulator backend.
const SYNTH_TASK_NS: u64 = 2_000_000;

/// Logical time between balancing rounds on the model and runqueue
/// backends (CFS's balancing period is on this order); decayed trackers
/// fold this much elapsed time per round.
const ROUND_NS: u64 = 1_000_000;

/// Half-life used by the catalogued PELT policies.
pub const PELT_HALF_LIFE_NS: u64 = 8_000_000;

/// Niceness cycle used by mixed-importance scenarios (E18): every third
/// task is important, normal, then background.
const MIXED_NICE: [i8; 3] = [-10, 0, 10];

/// Where `--trace DIR` asked traced runs to land, once set.
static TRACE_DIR: OnceLock<PathBuf> = OnceLock::new();

/// Enables decision tracing for every subsequent sim/rq run in this
/// process: each traced spec×backend execution exports a Chrome/Perfetto
/// `*.trace.json` into `dir` (created on first export).  Set once — this
/// is the `experiments --trace DIR` switch; later calls are ignored.
pub fn set_trace_dir(dir: &Path) {
    let _ = TRACE_DIR.set(dir.to_path_buf());
}

/// A recording sink for the next run, iff tracing was enabled.
fn trace_sink_for(nr_cores: usize) -> Option<sched_trace::TraceSink> {
    TRACE_DIR.get().map(|_| sched_trace::TraceSink::recording(nr_cores))
}

/// Drains `sink` and writes the Chrome trace for `spec` on `backend`.
/// Export failures are reported, not fatal — tracing must never sink an
/// experiment run.
fn export_trace(spec: &ExperimentSpec, backend: &str, sink: &sched_trace::TraceSink) {
    let Some(dir) = TRACE_DIR.get() else { return };
    let trace = sink.drain();
    if trace.events.is_empty() {
        return;
    }
    let slug: String = format!("{:?}-{}-{}", spec.id, spec.scenario, backend)
        .to_ascii_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '-' })
        .collect();
    let path = dir.join(format!("{slug}.trace.json"));
    let write = std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(&path, sched_trace::to_chrome_json(&trace)));
    match write {
        Ok(()) => eprintln!(
            "trace: wrote {} ({} events{})",
            path.display(),
            trace.events.len(),
            if trace.dropped > 0 { format!(", {} dropped", trace.dropped) } else { String::new() }
        ),
        Err(e) => eprintln!("trace: cannot write {}: {e}", path.display()),
    }
}

/// How a scenario's policy is built (policies are not `Clone`, and each
/// backend needs its own instance, so the *recipe* is what the spec holds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicySpec {
    /// The paper's Listing 1: `delta >= 2` filter, max-load choice, steal one.
    Listing1,
    /// The refuted greedy filter (`victim load >= 2`, ignores the thief).
    Greedy,
    /// Weighted-load variant of Listing 1.
    Weighted,
    /// Listing 1 with a CFS-style steal-half-the-imbalance step 3.
    StealHalf,
    /// Listing 1 with a NUMA-aware step-2 choice over the scenario topology.
    NumaAware,
    /// Listing 1 with the distance-ordered [`TopologyAwareChoice`] step 2
    /// (per-level thresholds and failure backoff), executed as flat rounds.
    TopoAware,
    /// The same topology-aware policy, but executed as *hierarchical*
    /// rounds: one level-capped pass per steal level, innermost first, on
    /// every backend (model `HierarchicalRound`, sim
    /// `HierarchicalScheduler`, rq `hierarchical_round`).
    Hierarchical,
    /// A policy compiled from a DSL definition — either inlined in a
    /// scenario document or parsed from source.  The catalogued
    /// `dsl(listing1)` rows use this with the stdlib Listing 1 program.
    Dsl(PolicyDef),
    /// Listing 1 over a PELT-style decayed thread count
    /// ([`sched_core::Policy::pelt`], half-life [`PELT_HALF_LIFE_NS`]).
    Pelt,
    /// The weighted balancer over a PELT-style decayed weighted load
    /// ([`sched_core::Policy::pelt_weighted`]).
    PeltWeighted,
    /// Listing 1 over a PELT-decayed thread count with an explicit
    /// half-life in milliseconds (the E21 sensitivity sweep).
    PeltHalfLife(u32),
}

impl PolicySpec {
    /// The stdlib Listing 1 program as a [`PolicySpec::Dsl`] recipe — the
    /// policy of the catalogued `dsl(listing1)` rows.
    pub fn dsl_listing1() -> PolicySpec {
        PolicySpec::Dsl(
            sched_dsl::parse(sched_dsl::stdlib::LISTING1)
                .expect("the stdlib Listing 1 source parses"),
        )
    }

    /// Display name used in records and tables.
    pub fn name(&self) -> String {
        match self {
            PolicySpec::Listing1 => "listing1".into(),
            PolicySpec::Greedy => "greedy".into(),
            PolicySpec::Weighted => "weighted".into(),
            PolicySpec::StealHalf => "listing1+steal_half".into(),
            PolicySpec::NumaAware => "listing1+numa_choice".into(),
            PolicySpec::TopoAware => "listing1+topo_choice".into(),
            PolicySpec::Hierarchical => "hierarchical(topo)".into(),
            PolicySpec::Dsl(def) => format!("dsl({})", def.name),
            PolicySpec::Pelt => "listing1+pelt".into(),
            PolicySpec::PeltWeighted => "weighted+pelt".into(),
            PolicySpec::PeltHalfLife(ms) => format!("listing1+pelt({ms}ms)"),
        }
    }

    /// Name of the load criterion this policy balances (the `tracker` field
    /// of the JSON records, schema v3).
    pub fn tracker_name(&self) -> String {
        match self {
            PolicySpec::Weighted => "weighted".into(),
            PolicySpec::Pelt => "pelt(nr_threads, 8ms)".into(),
            PolicySpec::PeltWeighted => "pelt(weighted, 8ms)".into(),
            PolicySpec::PeltHalfLife(ms) => format!("pelt(nr_threads, {ms}ms)"),
            PolicySpec::Dsl(def) => {
                let base = match def.metric {
                    sched_dsl::MetricSpec::Threads => "nr_threads",
                    sched_dsl::MetricSpec::Weighted => "weighted",
                };
                match def.load {
                    Some(sched_dsl::LoadSpec::Pelt { half_life_ms }) => {
                        format!("pelt({base}, {half_life_ms}ms)")
                    }
                    _ => base.into(),
                }
            }
            _ => "nr_threads".into(),
        }
    }

    /// Returns `true` if backends must execute this spec as hierarchical
    /// (domain-ordered) rounds rather than flat machine-wide ones.
    pub fn is_hierarchical(&self) -> bool {
        matches!(self, PolicySpec::Hierarchical)
    }

    /// Builds a fresh policy instance for one backend run.
    pub fn build(&self, topo: &Arc<MachineTopology>) -> Policy {
        match self {
            PolicySpec::Listing1 => Policy::simple(),
            PolicySpec::Greedy => Policy::greedy(),
            PolicySpec::Weighted => Policy::weighted(),
            PolicySpec::StealHalf => Policy::simple()
                .with_steal(Box::new(StealHalfImbalance::new(LoadMetric::NrThreads))),
            PolicySpec::NumaAware => Policy::simple().with_choice(Box::new(NumaAwareChoice::new(
                Arc::clone(topo),
                LoadMetric::NrThreads,
            ))),
            PolicySpec::TopoAware | PolicySpec::Hierarchical => Policy::simple().with_choice(
                Box::new(TopologyAwareChoice::new(Arc::clone(topo), LoadMetric::NrThreads)),
            ),
            PolicySpec::Dsl(def) => {
                sched_dsl::compile(def).expect("catalogued DSL policies compile").policy
            }
            PolicySpec::Pelt => Policy::pelt(PELT_HALF_LIFE_NS),
            PolicySpec::PeltWeighted => Policy::pelt_weighted(PELT_HALF_LIFE_NS),
            PolicySpec::PeltHalfLife(ms) => Policy::pelt(u64::from(*ms) * 1_000_000),
        }
    }
}

/// The machine a scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoSpec {
    /// `cores` identical cores on one node.
    Flat(usize),
    /// The dual-socket 16-core server of the wasted-cores study.
    DualSocket,
    /// The eight-node NUMA machine of the hierarchical experiment.
    EightNode,
}

impl TopoSpec {
    /// Builds the topology.
    pub fn build(self) -> MachineTopology {
        match self {
            TopoSpec::Flat(cores) => {
                TopologyBuilder::new().sockets(1).cores_per_socket(cores).build()
            }
            TopoSpec::DualSocket => TopologyBuilder::new().sockets(2).cores_per_socket(8).build(),
            TopoSpec::EightNode => TopologyBuilder::eight_node_numa(),
        }
    }
}

/// The richer simulator workloads a scenario may carry on top of its load
/// vector (E9/E10 reproduce the paper's motivation numbers with these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Fork-join scientific workload sized to the machine.
    Scientific,
    /// OLTP workload sized to the machine.
    Oltp,
    /// Huge mostly-sleeping population with sparse bursts (E24) — sized to
    /// stress the asymptotic gap between the tick and event engines.
    Sleepers,
}

/// A simulator workload driver: the named generator plus its seed and
/// jitter, both carried in the scenario document (with per-kind defaults
/// matching the historical hardcoded values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Which generator runs.
    pub kind: WorkloadKind,
    /// RNG seed for the generator.
    pub seed: u64,
    /// Service-time jitter, in percent.
    pub jitter_pct: u32,
}

impl WorkloadSpec {
    /// A workload spec with the historical default seed/jitter for `kind`
    /// (scientific: seed 42, 5% jitter; OLTP: seed 7, 20% jitter;
    /// sleepers: seed 24, 20% jitter).
    pub fn new(kind: WorkloadKind) -> Self {
        match kind {
            WorkloadKind::Scientific => WorkloadSpec { kind, seed: 42, jitter_pct: 5 },
            WorkloadKind::Oltp => WorkloadSpec { kind, seed: 7, jitter_pct: 20 },
            WorkloadKind::Sleepers => WorkloadSpec { kind, seed: 24, jitter_pct: 20 },
        }
    }
}

/// A bursty on/off scenario layered over a spec's load vector: each epoch,
/// one core's tasks briefly go to sleep (its instantaneous load drops to
/// zero) and return at the epoch's end.  The time-averaged load of every
/// core is identical, so migrations performed during the blips are pure
/// churn — the shape experiment E17 uses to separate instantaneous from
/// decayed load criteria.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstSpec {
    /// Number of sleep/wake epochs (one balancing round each).
    pub epochs: usize,
    /// Logical time between epochs, in nanoseconds.  Kept well below the
    /// PELT half-life so decayed loads barely move across one blip.
    pub epoch_ns: u64,
    /// Logical warm-up time before the first epoch, so decayed trackers
    /// have converged to the steady per-core load when the blinking starts.
    pub warmup_ns: u64,
    /// RNG seed for the simulator's blinker realisation of the shape.
    pub seed: u64,
    /// On/off cycle jitter for the simulator realisation, in percent.
    pub jitter_pct: u32,
}

impl BurstSpec {
    /// A burst spec with the historical default simulator seed (17) and
    /// jitter (40%).
    pub fn new(epochs: usize, epoch_ns: u64, warmup_ns: u64) -> Self {
        BurstSpec { epochs, epoch_ns, warmup_ns, seed: 17, jitter_pct: 40 }
    }
}

/// An overflow-storm driver replacing the run-to-convergence loop: each
/// epoch, a fan-out burst lands on core 0 and a fixed number of genuinely
/// concurrent balancing rounds runs against it **without any tick** — so
/// whatever the runqueue backend does with ring overflow is exactly what
/// thieves see — then the machine drains and the next burst fires.
///
/// The headline metric is [`sched_metrics::OverflowExposure`]: the
/// fraction of the machine left idle *after* each round while an
/// overloaded core still held waiting work.  A backend whose overflow
/// stays stealable (the shared injector) pins this at ~0; one that hides
/// overflow behind the tick (the legacy private spill) strands idle cores
/// for the rest of every epoch.  Only the runqueue backends execute storm
/// specs — the model and simulator have no ring to overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StormSpec {
    /// Number of burst/balance/drain epochs.
    pub epochs: usize,
    /// Tasks spawned onto core 0 at each epoch's start — sized well past
    /// the tiny flavours' ring capacity so most of the burst overflows.
    pub fanout: usize,
    /// Concurrent balancing rounds per epoch, run with no tick in between.
    pub rounds_per_epoch: usize,
}

/// An open-loop arrival driver for the real executor backend: Poisson
/// arrivals at a fixed offered rate, each request costing a sampled
/// service time, submitted on the generator's clock *regardless of
/// completions* — the load shape under which queueing delay (and so the
/// measured end-to-end p99/p999) is honest rather than self-throttled.
/// Only the `exec` backend executes open-loop specs: the model and
/// simulators have no wall clock to measure against, and the runqueue
/// harnesses drive balancing rounds, not request streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenLoopDriverSpec {
    /// Offered arrival rate, in requests per second.
    pub rate_hz: u64,
    /// Generator horizon, in milliseconds of wall-clock time.
    pub duration_ms: u64,
    /// Per-request service-time distribution.
    pub service: sched_exec::ServiceMix,
    /// RNG seed for the arrival/service draws.
    pub seed: u64,
}

impl OpenLoopDriverSpec {
    /// The historical default generator seed.
    pub const DEFAULT_SEED: u64 = 11;

    /// An open-loop spec with the default seed.
    pub fn new(rate_hz: u64, duration_ms: u64, service: sched_exec::ServiceMix) -> Self {
        OpenLoopDriverSpec { rate_hz, duration_ms, service, seed: Self::DEFAULT_SEED }
    }

    /// The executor-crate form of this driver.
    pub fn exec_spec(&self) -> sched_exec::OpenLoopSpec {
        sched_exec::OpenLoopSpec {
            rate_hz: self.rate_hz,
            duration_ms: self.duration_ms,
            service: self.service,
            seed: self.seed,
        }
    }
}

/// How work arrives while the balancer runs — exactly one of the five
/// shapes.  The old spec carried `workload`/`burst`/`storm` as three
/// independent `Option`s whose illegal combinations were resolved by
/// backend-dependent precedence; as an enum those combinations are
/// unrepresentable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// Replay the initial load vector and balance to convergence (or the
    /// round budget).
    Replay,
    /// The simulator runs a named workload generator; the model and
    /// runqueue backends replay the load vector as usual.
    Workload(WorkloadSpec),
    /// Bursty on/off epochs replacing the run-to-convergence loop.
    Burst(BurstSpec),
    /// Overflow storms (runqueue backends only).
    Storm(StormSpec),
    /// Open-loop request stream on the real executor (`exec` backend only).
    OpenLoop(OpenLoopDriverSpec),
}

impl Driver {
    /// The burst parameters, if this is a burst driver.
    pub fn burst(&self) -> Option<BurstSpec> {
        match self {
            Driver::Burst(b) => Some(*b),
            _ => None,
        }
    }

    /// The storm parameters, if this is a storm driver.
    pub fn storm(&self) -> Option<StormSpec> {
        match self {
            Driver::Storm(s) => Some(*s),
            _ => None,
        }
    }

    /// The workload parameters, if this is a workload driver.
    pub fn workload(&self) -> Option<WorkloadSpec> {
        match self {
            Driver::Workload(w) => Some(*w),
            _ => None,
        }
    }

    /// The open-loop parameters, if this is an open-loop driver.
    pub fn openloop(&self) -> Option<OpenLoopDriverSpec> {
        match self {
            Driver::OpenLoop(o) => Some(*o),
            _ => None,
        }
    }
}

/// Steal-batch sizing for the E23 sweep: how many threads one successful
/// steal decision may claim in a single queue acquisition.  Maps onto
/// [`sched_rq::StealBatch`]; only the runqueue backends execute batch
/// specs — the model and simulator balance one abstract thread per steal
/// by construction, so a batched row there would measure nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchK {
    /// A fixed batch of `k` per acquisition; `Fixed(1)` is the Listing 1
    /// `stealOneThread` baseline every other point is compared against.
    Fixed(usize),
    /// Half the observed thief/victim imbalance (at least one) — the
    /// convergence-preserving transfer that leaves neither side more
    /// loaded than the other was.
    HalfImbalance,
}

impl BatchK {
    /// The swept batch sizes, in sweep order.
    pub const SWEEP: [BatchK; 5] = [
        BatchK::Fixed(1),
        BatchK::Fixed(2),
        BatchK::Fixed(4),
        BatchK::Fixed(8),
        BatchK::HalfImbalance,
    ];

    /// Stable record label for the JSON rows (schema v5 `steal_batch_k`).
    pub fn name(self) -> &'static str {
        match self {
            BatchK::Fixed(1) => "1",
            BatchK::Fixed(2) => "2",
            BatchK::Fixed(4) => "4",
            BatchK::Fixed(8) => "8",
            BatchK::Fixed(_) => "fixed",
            BatchK::HalfImbalance => "half",
        }
    }

    /// The runqueue-layer transfer-sizing policy this sweep point selects.
    fn steal_batch(self) -> sched_rq::StealBatch {
        match self {
            BatchK::Fixed(k) => sched_rq::StealBatch::Fixed(k),
            BatchK::HalfImbalance => sched_rq::StealBatch::HalfImbalance,
        }
    }
}

/// An invalid spec combination rejected by [`ExperimentSpecBuilder::build`]
/// or the [`mod@crate::catalog`] loader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SpecError {}

impl SpecError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        SpecError(message.into())
    }
}

/// One experiment, declared once, executable on every backend.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Which experiment of the per-experiment index this scenario belongs to.
    pub id: ExperimentId,
    /// Human-readable scenario name.
    pub scenario: String,
    /// Initial per-core load vector (`loads[i]` threads start on core `i`).
    pub loads: Vec<usize>,
    /// Machine shape; `loads.len()` must equal its CPU count.
    pub topo: TopoSpec,
    /// Policy recipe.
    pub policy: PolicySpec,
    /// How work arrives while the balancer runs.
    pub driver: Driver,
    /// Balancing-round budget for the model and runqueue backends (replay
    /// and workload drivers; burst/storm epochs pace themselves).
    pub budget_rounds: usize,
    /// Give the initial tasks mixed niceness (cycling important / normal /
    /// background) instead of uniform `nice 0`.
    pub mixed_nice: bool,
    /// Steal-batch sizing override for the E23 sweep, if any (runqueue
    /// backends only; `None` keeps the one-thread-per-steal default).
    pub batch: Option<BatchK>,
    /// Backend matrix from the scenario document: only backends whose name
    /// appears here execute the spec.  `None` means every applicable
    /// backend (a backend may still decline, e.g. the model on storms).
    pub backends: Option<Vec<String>>,
    /// Driver-level event budget for the simulator backends (schema v6):
    /// both sim engines stop after this many processed events and report
    /// the run as truncated.  E24 uses it to cap the tick engine where the
    /// event engine finishes comfortably.  `None` means unbounded.
    pub events: Option<u64>,
    /// Same-time tie-break seed for the event-driven simulator backend
    /// (`OrderingPolicy::Seeded`); `None` keeps the parity-preserving
    /// priority ordering.  Recorded in repro scenarios emitted by the
    /// ordering sweep.
    pub order: Option<u64>,
}

impl ExperimentSpec {
    /// Starts building a spec; `build()` validates the combination.
    pub fn builder(id: ExperimentId, scenario: impl Into<String>) -> ExperimentSpecBuilder {
        ExperimentSpecBuilder {
            id,
            scenario: scenario.into(),
            loads: Vec::new(),
            topo: None,
            policy: PolicySpec::Listing1,
            driver: Driver::Replay,
            budget_rounds: 0,
            mixed_nice: false,
            batch: None,
            backends: None,
            events: None,
            order: None,
        }
    }

    /// Total threads in the initial load vector.
    pub fn nr_threads(&self) -> u64 {
        self.loads.iter().map(|&l| l as u64).sum()
    }

    /// The workload the simulator backend runs for this spec.
    pub(crate) fn sim_workload(&self, nr_cores: usize) -> Workload {
        match self.driver {
            Driver::Burst(burst) => {
                // The simulator realises the on/off shape natively: blinker
                // threads whose compute/sleep cycles open the same transient
                // imbalances the model/rq drivers script by hand.
                sched_workloads::OnOffWorkload {
                    nr_cores,
                    blinkers_per_core: 2,
                    cycles: burst.epochs.min(24),
                    on_ns: burst.epoch_ns * 2,
                    off_ns: burst.epoch_ns * 2,
                    jitter: f64::from(burst.jitter_pct) / 100.0,
                    seed: burst.seed,
                }
                .generate()
            }
            Driver::Workload(w) => match w.kind {
                WorkloadKind::Scientific => ScientificWorkload {
                    nr_threads: nr_cores,
                    iterations: 8,
                    phase_ns: 4_000_000,
                    jitter: f64::from(w.jitter_pct) / 100.0,
                    seed: w.seed,
                    fork_on_core: Some(0),
                }
                .generate(),
                WorkloadKind::Oltp => OltpWorkload {
                    nr_workers: nr_cores * 2,
                    transactions: 40,
                    service_ns: 500_000,
                    think_ns: 250_000,
                    jitter: f64::from(w.jitter_pct) / 100.0,
                    seed: w.seed,
                    initial_spread: 4,
                }
                .generate(),
                WorkloadKind::Sleepers => sched_workloads::SleeperWorkload {
                    nr_tasks: 1_000_000,
                    sleep_ns: 20_000_000_000,
                    jitter: f64::from(w.jitter_pct) / 100.0,
                    burst_percent: 2,
                    burst_ns: 500_000,
                    seed: w.seed,
                }
                .generate(),
            },
            // Open-loop specs never reach a simulator (every non-exec
            // backend declines them), so replaying the (empty) load vector
            // here is dead code kept only for match exhaustiveness.
            Driver::Replay | Driver::Storm(_) | Driver::OpenLoop(_) => {
                // Replay the load vector: `loads[i]` independent tasks of
                // fixed CPU time pinned to origin core `i`.
                let mut workload = Workload::new(format!("synthetic({})", self.scenario));
                let mut index = 0usize;
                for (core, &n) in self.loads.iter().enumerate() {
                    for _ in 0..n {
                        workload.push(ThreadSpec {
                            nice: if self.mixed_nice {
                                MIXED_NICE[index % MIXED_NICE.len()]
                            } else {
                                0
                            },
                            arrival_ns: 0,
                            origin_core: Some(core),
                            phases: vec![WorkloadPhase::Compute(SYNTH_TASK_NS)],
                        });
                        index += 1;
                    }
                }
                workload
            }
        }
    }
}

/// Builder for [`ExperimentSpec`] — the one construction path that checks
/// the combinations the type system alone cannot rule out (load vector vs
/// machine size, batch sizing vs driver shape, inline DSL compilability).
#[derive(Debug, Clone)]
pub struct ExperimentSpecBuilder {
    id: ExperimentId,
    scenario: String,
    loads: Vec<usize>,
    topo: Option<TopoSpec>,
    policy: PolicySpec,
    driver: Driver,
    budget_rounds: usize,
    mixed_nice: bool,
    batch: Option<BatchK>,
    backends: Option<Vec<String>>,
    events: Option<u64>,
    order: Option<u64>,
}

impl ExperimentSpecBuilder {
    /// Initial per-core load vector.
    pub fn loads(mut self, loads: Vec<usize>) -> Self {
        self.loads = loads;
        self
    }

    /// Machine shape.
    pub fn topo(mut self, topo: TopoSpec) -> Self {
        self.topo = Some(topo);
        self
    }

    /// Policy recipe (defaults to Listing 1).
    pub fn policy(mut self, policy: PolicySpec) -> Self {
        self.policy = policy;
        self
    }

    /// Arrival driver (defaults to [`Driver::Replay`]).
    pub fn driver(mut self, driver: Driver) -> Self {
        self.driver = driver;
        self
    }

    /// Balancing-round budget (defaults to 0).
    pub fn budget_rounds(mut self, budget: usize) -> Self {
        self.budget_rounds = budget;
        self
    }

    /// Mixed-importance niceness cycling.
    pub fn mixed_nice(mut self, mixed: bool) -> Self {
        self.mixed_nice = mixed;
        self
    }

    /// Steal-batch sizing override.
    pub fn batch(mut self, batch: BatchK) -> Self {
        self.batch = Some(batch);
        self
    }

    /// Restrict execution to the named backends.
    pub fn backends(mut self, backends: Vec<String>) -> Self {
        self.backends = Some(backends);
        self
    }

    /// Event budget for the simulator backends.
    pub fn events(mut self, events: u64) -> Self {
        self.events = Some(events);
        self
    }

    /// Same-time tie-break seed for the event-driven simulator backend.
    pub fn order(mut self, seed: u64) -> Self {
        self.order = Some(seed);
        self
    }

    /// Validates and builds the spec.
    pub fn build(self) -> Result<ExperimentSpec, SpecError> {
        let scenario = &self.scenario;
        let topo = self
            .topo
            .ok_or_else(|| SpecError::new(format!("{scenario}: a spec needs a topology")))?;
        if self.loads.is_empty() {
            return Err(SpecError::new(format!("{scenario}: a spec needs a load vector")));
        }
        let nr_cpus = topo.build().nr_cpus();
        if nr_cpus != self.loads.len() {
            return Err(SpecError::new(format!(
                "{scenario}: load vector has {} entries but the machine has {nr_cpus} cores",
                self.loads.len()
            )));
        }
        if self.batch.is_some() && !matches!(self.driver, Driver::Replay | Driver::Storm(_)) {
            // The old option-bag API silently dropped the batch on burst
            // drivers (no backend read it there); now it's unrepresentable
            // noise, so reject it loudly.
            return Err(SpecError::new(format!(
                "{scenario}: a steal batch applies to replay and storm drivers only"
            )));
        }
        if let PolicySpec::Dsl(def) = &self.policy {
            sched_dsl::compile(def).map_err(|e| {
                SpecError::new(format!("{scenario}: inline policy does not compile: {e}"))
            })?;
        }
        // The simulator backends have no ring to overflow and no per-steal
        // queue acquisition: a backend matrix that *names* one of them on a
        // storm or batch spec is a contradiction, rejected here instead of
        // silently producing no record at run time.
        if let Some(backends) = &self.backends {
            if backends.iter().any(|b| b.starts_with("sim"))
                && (matches!(self.driver, Driver::Storm(_)) || self.batch.is_some())
            {
                return Err(SpecError::new(format!(
                    "{scenario}: the simulator backends cannot execute storm or batch specs"
                )));
            }
        }
        // Open-loop streams run on the real executor alone: any other
        // backend named in the matrix would silently produce no record,
        // and with no matrix at all the intent is ambiguous, so the spec
        // must say `backends ["exec"]` explicitly.
        if matches!(self.driver, Driver::OpenLoop(_)) {
            match &self.backends {
                Some(backends) if backends.iter().all(|b| b == "exec") && !backends.is_empty() => {}
                Some(_) => {
                    return Err(SpecError::new(format!(
                        "{scenario}: an open-loop driver runs on the `exec` backend only"
                    )))
                }
                None => {
                    return Err(SpecError::new(format!(
                        "{scenario}: an open-loop spec must declare `backends [\"exec\"]`"
                    )))
                }
            }
        }
        if self.events.is_some() && matches!(self.driver, Driver::Storm(_) | Driver::OpenLoop(_)) {
            return Err(SpecError::new(format!(
                "{scenario}: an event budget applies to the simulator backends only, \
                 which cannot execute this driver"
            )));
        }
        Ok(ExperimentSpec {
            id: self.id,
            scenario: self.scenario,
            loads: self.loads,
            topo,
            policy: self.policy,
            driver: self.driver,
            budget_rounds: self.budget_rounds,
            mixed_nice: self.mixed_nice,
            batch: self.batch,
            backends: self.backends,
            events: self.events,
            order: self.order,
        })
    }
}

/// What one backend measured for one spec.
#[derive(Debug, Clone)]
pub struct ExperimentRecord {
    /// Experiment id, lowercase (`"e5"`).
    pub experiment: String,
    /// Scenario name from the spec.
    pub scenario: String,
    /// Backend name (`"model"`, `"sim"`, `"rq"`).
    pub backend: &'static str,
    /// Policy name from the spec.
    pub policy: String,
    /// Name of the load criterion the policy balanced (schema v3).
    pub tracker: String,
    /// Machine size.
    pub cores: usize,
    /// Initial thread count.
    pub threads: u64,
    /// Backend-specific throughput (see `throughput_unit`).
    pub throughput: f64,
    /// What `throughput` counts: `"migrations/s"` (model, rq, wall-clock)
    /// or `"ops/s"` (sim, simulated time).
    pub throughput_unit: &'static str,
    /// Fraction of core-time idle while another core was overloaded.
    pub violating_idle: f64,
    /// Rounds to reach work conservation, if the backend converged.
    pub convergence_rounds: Option<usize>,
    /// Successful steals.
    pub migrations: u64,
    /// Failed steal attempts (stale selections re-checked away).
    pub failures: u64,
    /// Where the migrated threads came from, bucketed by steal level.
    pub locality: StealLocality,
    /// Runqueue discipline of the backend (`"mutex"`, `"deque"`), for the
    /// rq backends only (schema v4).
    pub rq_backend: Option<&'static str>,
    /// p99 scheduling latency in microseconds — the time between a thread
    /// becoming runnable and first running (schema v4).  Only the
    /// simulator backend carries a latency recorder; `None` elsewhere.
    pub p99_sched_latency_us: Option<f64>,
    /// Measured wall-clock end-to-end p99 request latency in microseconds
    /// — submit to completion on the real executor, open-loop arrivals
    /// (schema v8).  Only the `exec` backend measures it; `None` elsewhere.
    pub e2e_p99_us: Option<f64>,
    /// Measured wall-clock end-to-end p999 request latency in microseconds
    /// (schema v8; see `e2e_p99_us`).
    pub e2e_p999_us: Option<f64>,
    /// Batch-size label of the E23 sweep (`"1"`, `"2"`, `"4"`, `"8"`,
    /// `"half"`; schema v5).  `None` on non-batch records.
    pub steal_batch_k: Option<&'static str>,
    /// Threads migrated per successful steal acquisition (schema v5).
    /// `migrations / successes`: exactly 1.0 at `k = 1`, strictly above it
    /// when batching amortises acquisitions.  Only batch-sweep records
    /// measure it; `None` elsewhere.
    pub tasks_per_acquisition: Option<f64>,
    /// Violating-idle fraction per NUMA node, in node order.
    pub per_node_violating_idle: Vec<f64>,
    /// Which simulation engine produced this record (`"tick"` or
    /// `"event"`; schema v6).  `None` on non-simulator backends.
    pub sim_engine: Option<&'static str>,
    /// Discrete events the simulation engine processed (schema v6).
    /// `None` on non-simulator backends.
    pub events_processed: Option<u64>,
    /// Final per-core thread counts when the backend finished, for
    /// invariant checking (conservation of tasks, non-inversion).
    /// Serialized only by [`records_to_json_full`] (`--full-records`,
    /// schema v7); default documents omit the key entirely.  The simulator
    /// leaves it empty (its tasks run to completion, so there is no final
    /// residency to conserve).
    pub final_loads: Vec<usize>,
    /// Wall-clock cost of the run, in milliseconds.
    pub wall_ms: f64,
}

impl ExperimentRecord {
    /// Fraction of level-attributed migrations that crossed a NUMA node
    /// boundary.
    pub fn remote_steal_rate(&self) -> f64 {
        self.locality.remote_rate()
    }

    /// The record as a JSON object (the default, v6-shaped record).
    pub fn to_json(&self) -> JsonValue {
        self.to_json_opts(false)
    }

    /// The record as a JSON object; `full` additionally serializes the
    /// `final_loads` vector (schema v7, the `--full-records` flag).
    pub fn to_json_opts(&self, full: bool) -> JsonValue {
        let levels = self.locality.counts();
        let mut fields = vec![
            ("experiment", JsonValue::Str(self.experiment.clone())),
            ("scenario", JsonValue::Str(self.scenario.clone())),
            ("backend", JsonValue::Str(self.backend.into())),
            ("policy", JsonValue::Str(self.policy.clone())),
            ("tracker", JsonValue::Str(self.tracker.clone())),
            ("cores", JsonValue::Int(self.cores as i64)),
            ("threads", JsonValue::Int(self.threads as i64)),
            ("throughput", JsonValue::Float(self.throughput)),
            ("throughput_unit", JsonValue::Str(self.throughput_unit.into())),
            ("violating_idle", JsonValue::Float(self.violating_idle)),
            (
                "convergence_rounds",
                match self.convergence_rounds {
                    Some(r) => JsonValue::Int(r as i64),
                    None => JsonValue::Null,
                },
            ),
            ("migrations", JsonValue::Int(self.migrations as i64)),
            ("failures", JsonValue::Int(self.failures as i64)),
            ("steals_smt", JsonValue::Int(levels[0] as i64)),
            ("steals_llc", JsonValue::Int(levels[1] as i64)),
            ("steals_node", JsonValue::Int(levels[2] as i64)),
            ("steals_remote", JsonValue::Int(levels[3] as i64)),
            ("remote_steal_rate", JsonValue::Float(self.remote_steal_rate())),
            (
                "rq_backend",
                match self.rq_backend {
                    Some(name) => JsonValue::Str(name.into()),
                    None => JsonValue::Null,
                },
            ),
            (
                "p99_sched_latency_us",
                match self.p99_sched_latency_us {
                    Some(us) => JsonValue::Float(us),
                    None => JsonValue::Null,
                },
            ),
            (
                "steal_batch_k",
                match self.steal_batch_k {
                    Some(k) => JsonValue::Str(k.into()),
                    None => JsonValue::Null,
                },
            ),
            (
                "tasks_per_acquisition",
                match self.tasks_per_acquisition {
                    Some(t) => JsonValue::Float(t),
                    None => JsonValue::Null,
                },
            ),
            (
                "per_node_violating_idle",
                JsonValue::Array(
                    self.per_node_violating_idle.iter().map(|&v| JsonValue::Float(v)).collect(),
                ),
            ),
            (
                "sim_engine",
                match self.sim_engine {
                    Some(engine) => JsonValue::Str(engine.into()),
                    None => JsonValue::Null,
                },
            ),
            (
                "events_processed",
                match self.events_processed {
                    Some(n) => JsonValue::Int(n as i64),
                    None => JsonValue::Null,
                },
            ),
            (
                "e2e_p99_us",
                match self.e2e_p99_us {
                    Some(us) => JsonValue::Float(us),
                    None => JsonValue::Null,
                },
            ),
            (
                "e2e_p999_us",
                match self.e2e_p999_us {
                    Some(us) => JsonValue::Float(us),
                    None => JsonValue::Null,
                },
            ),
            ("wall_ms", JsonValue::Float(self.wall_ms)),
        ];
        if full {
            fields.push((
                "final_loads",
                JsonValue::Array(
                    self.final_loads.iter().map(|&n| JsonValue::Int(n as i64)).collect(),
                ),
            ));
        }
        object(fields)
    }
}

/// One way of executing an [`ExperimentSpec`].
pub trait Backend {
    /// Short name used in records (`"model"`, `"sim"`, `"rq"`).
    fn name(&self) -> &'static str;

    /// Executes the spec, or returns `None` if this backend cannot run it.
    fn run(&self, spec: &ExperimentSpec) -> Option<ExperimentRecord>;
}

fn record_base(spec: &ExperimentSpec, backend: &'static str) -> ExperimentRecord {
    ExperimentRecord {
        experiment: format!("{:?}", spec.id).to_ascii_lowercase(),
        scenario: spec.scenario.clone(),
        backend,
        policy: spec.policy.name(),
        tracker: spec.policy.tracker_name(),
        cores: spec.loads.len(),
        threads: spec.nr_threads(),
        throughput: 0.0,
        throughput_unit: "migrations/s",
        violating_idle: 0.0,
        convergence_rounds: None,
        migrations: 0,
        failures: 0,
        locality: StealLocality::new(),
        rq_backend: None,
        p99_sched_latency_us: None,
        e2e_p99_us: None,
        e2e_p999_us: None,
        steal_batch_k: spec.batch.map(BatchK::name),
        tasks_per_acquisition: None,
        per_node_violating_idle: Vec::new(),
        sim_engine: None,
        events_processed: None,
        final_loads: Vec::new(),
        wall_ms: 0.0,
    }
}

/// Samples the per-node idle fraction of one pre-convergence round into the
/// running per-node violation accumulators.
fn sample_node_idle(acc: &mut [f64], topo: &MachineTopology, is_idle: impl Fn(usize) -> bool) {
    for (node, slot) in acc.iter_mut().enumerate() {
        let cpus = topo.cpus_of_node(NodeId(node));
        let idle = cpus.iter().filter(|c| is_idle(c.0)).count();
        *slot += idle as f64 / cpus.len() as f64;
    }
}

/// Averages per-node accumulators over the sampled rounds.
fn finish_node_idle(acc: Vec<f64>, sampled_rounds: u64) -> Vec<f64> {
    if sampled_rounds == 0 {
        acc.into_iter().map(|_| 0.0).collect()
    } else {
        acc.into_iter().map(|v| v / sampled_rounds as f64).collect()
    }
}

/// Niceness of the `i`-th spawned task under a spec (uniform `nice 0`
/// unless the spec asks for mixed importance).
fn nice_of(spec: &ExperimentSpec, index: u64) -> Nice {
    if spec.mixed_nice {
        Nice::new(MIXED_NICE[(index as usize) % MIXED_NICE.len()])
    } else {
        Nice::NORMAL
    }
}

/// Final per-core thread counts of a model system.
fn model_final_loads(system: &SystemState) -> Vec<usize> {
    (0..system.nr_cores()).map(|c| system.core(CoreId(c)).nr_threads() as usize).collect()
}

/// Final per-core thread counts of a runqueue machine.
fn rq_final_loads(snapshots: &[sched_core::CoreSnapshot]) -> Vec<usize> {
    snapshots.iter().map(|s| s.nr_threads as usize).collect()
}

/// Pure-model backend: concurrent balancing rounds on
/// [`sched_core::SystemState`], no time, no threads — the altitude the
/// proofs live at.
pub struct ModelBackend;

impl ModelBackend {
    /// The bursty on/off driver: each epoch one core's tasks sleep, a
    /// single balancing round runs against the blipped state, and the
    /// sleepers return.  Counts the churn those blips induce.
    fn run_burst(
        &self,
        spec: &ExperimentSpec,
        burst: BurstSpec,
        mut system: SystemState,
        topo: &Arc<MachineTopology>,
    ) -> ExperimentRecord {
        let balancer = Balancer::new(spec.policy.build(topo));
        let tracker = Arc::clone(&balancer.policy().tracker);
        let executor = ConcurrentRound::new(&balancer);
        let mut record = record_base(spec, "model");
        let nr_cores = system.nr_cores();
        let mut node_idle = vec![0.0f64; topo.nr_nodes()];
        let mut violating_core_rounds = 0.0f64;

        // Warm up: let decayed trackers converge to the steady loads.
        let mut now = burst.warmup_ns;
        system.tick(now, tracker.as_ref());

        let start = Instant::now();
        for epoch in 0..burst.epochs {
            // One core's tasks go to sleep: stash them away.
            let sleeper = CoreId(epoch % nr_cores);
            let parked_current = system.core_mut(sleeper).current.take();
            let parked_ready = std::mem::take(&mut system.core_mut(sleeper).ready);

            now += burst.epoch_ns;
            system.tick(now, tracker.as_ref());
            let idle = system.idle_cores();
            violating_core_rounds += idle.len() as f64 / nr_cores as f64;
            sample_node_idle(&mut node_idle, topo, |c| idle.contains(&CoreId(c)));

            let report = executor.execute(&mut system, &RoundSchedule::AllSelectThenSteal);
            record.migrations += report.nr_stolen() as u64;
            record.failures += report.nr_failures() as u64;
            for attempt in report.successes() {
                let victim = attempt.outcome.victim().expect("successes have victims");
                record.locality.record(
                    topo.steal_level(attempt.thief, victim),
                    attempt.outcome.nr_stolen() as u64,
                );
            }

            // The sleepers wake on their own core.
            if let Some(task) = parked_current {
                system.core_mut(sleeper).enqueue(task);
            }
            for task in parked_ready {
                system.core_mut(sleeper).enqueue(task);
            }
        }
        let wall = start.elapsed();

        record.wall_ms = wall.as_secs_f64() * 1e3;
        record.throughput = if wall.as_secs_f64() > 0.0 {
            record.migrations as f64 / wall.as_secs_f64()
        } else {
            0.0
        };
        record.violating_idle = violating_core_rounds / burst.epochs.max(1) as f64;
        record.per_node_violating_idle = finish_node_idle(node_idle, burst.epochs as u64);
        record.final_loads = model_final_loads(&system);
        record
    }
}

impl Backend for ModelBackend {
    fn name(&self) -> &'static str {
        "model"
    }

    fn run(&self, spec: &ExperimentSpec) -> Option<ExperimentRecord> {
        // Overflow storms probe ring-overflow handling; the model has no
        // ring, so there is nothing for it to measure.  Batch sweeps probe
        // how many queue acquisitions a transfer costs; the model moves one
        // abstract thread per steal with no queue to acquire.
        if spec.driver.storm().is_some() || spec.driver.openloop().is_some() || spec.batch.is_some()
        {
            return None;
        }
        let topo = Arc::new(spec.topo.build());
        if topo.nr_cpus() != spec.loads.len() {
            return None;
        }
        let mut system = SystemState::with_topology(&topo);
        let mut next_task = 0u64;
        for (core, &n) in spec.loads.iter().enumerate() {
            for _ in 0..n {
                system
                    .core_mut(CoreId(core))
                    .enqueue(Task::with_nice(TaskId(next_task), nice_of(spec, next_task)));
                next_task += 1;
            }
        }

        if let Some(burst) = spec.driver.burst() {
            return Some(self.run_burst(spec, burst, system, &topo));
        }

        let balancer = Balancer::new(spec.policy.build(&topo));
        let tracker = Arc::clone(&balancer.policy().tracker);
        let hierarchical = spec
            .policy
            .is_hierarchical()
            .then(|| HierarchicalRound::new(&balancer, Arc::clone(&topo)));
        let executor = ConcurrentRound::new(&balancer);
        let mut record = record_base(spec, self.name());
        let nr_cores = spec.loads.len();
        let mut violating_core_rounds = 0.0f64;
        let mut node_idle = vec![0.0f64; topo.nr_nodes()];
        let mut sampled_rounds = 0u64;

        // Folds one round's attempts into the counters, attributing every
        // successful steal to its distance class.
        let absorb = |record: &mut ExperimentRecord, report: &RoundReport| {
            record.migrations += report.nr_stolen() as u64;
            record.failures += report.nr_failures() as u64;
            for attempt in report.successes() {
                let victim = attempt.outcome.victim().expect("successes have victims");
                record.locality.record(
                    topo.steal_level(attempt.thief, victim),
                    attempt.outcome.nr_stolen() as u64,
                );
            }
        };

        let start = Instant::now();
        for round in 0..=spec.budget_rounds {
            // One balancing period elapses per round; decayed criteria fold
            // it into every core's tracked load before selecting victims.
            system.tick((round as u64 + 1) * ROUND_NS, tracker.as_ref());
            if system.is_work_conserving() {
                record.convergence_rounds = Some(round);
                break;
            }
            if round == spec.budget_rounds {
                break;
            }
            violating_core_rounds += system.idle_cores().len() as f64 / nr_cores as f64;
            let idle = system.idle_cores();
            sample_node_idle(&mut node_idle, &topo, |c| idle.contains(&CoreId(c)));
            sampled_rounds += 1;
            match &hierarchical {
                Some(hier) => {
                    let report = hier.execute(&mut system, &RoundSchedule::AllSelectThenSteal);
                    for pass in &report.passes {
                        absorb(&mut record, &pass.report);
                    }
                }
                None => {
                    let report = executor.execute(&mut system, &RoundSchedule::AllSelectThenSteal);
                    absorb(&mut record, &report);
                }
            }
        }
        let wall = start.elapsed();

        record.wall_ms = wall.as_secs_f64() * 1e3;
        record.throughput = if wall.as_secs_f64() > 0.0 {
            record.migrations as f64 / wall.as_secs_f64()
        } else {
            0.0
        };
        // Average fraction of cores sitting idle per pre-convergence round;
        // every idle core in a non-work-conserving state is a violation by
        // definition.
        record.violating_idle =
            if sampled_rounds == 0 { 0.0 } else { violating_core_rounds / sampled_rounds as f64 };
        record.per_node_violating_idle = finish_node_idle(node_idle, sampled_rounds);
        record.final_loads = model_final_loads(&system);
        Some(record)
    }
}

/// Discrete-event simulator backend: the spec's workload (or its load
/// vector replayed as pinned tasks) on [`sched_sim::Engine`] with the
/// optimistic scheduler driven by the spec's policy.
pub struct SimBackend;

/// Event-driven flavour of the simulator backend (record backend
/// `"sim-event"`): the identical scenario on [`sched_sim::EventEngine`],
/// whose cost scales with the number of events rather than `cores ×
/// horizon`.  Under the default priority tie-break its records match the
/// tick engine's exactly (pinned by the parity tests); a spec carrying an
/// `order` seed instead runs it under a seeded same-time permutation.
pub struct SimEventBackend;

/// Which simulation engine a sim backend drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEngine {
    /// The cycle-accurate tick engine ([`sched_sim::Engine`]).
    Tick,
    /// The event-driven engine ([`sched_sim::EventEngine`]).
    Event,
}

/// Runs one spec on the chosen simulation engine and returns the raw
/// simulator result, honouring the spec's `events` budget and (on the
/// event engine) its `order` seed.  This is the hook the scenario fuzzer's
/// ordering sweep and the engine-parity tests drive: they compare result
/// quantities (`finished`, `operations`, `makespan_ns`, …) that record
/// stamping would discard.  Returns `None` for specs the simulator cannot
/// execute (storms, batch sweeps, mis-sized load vectors).
pub fn run_sim_result(engine: SimEngine, spec: &ExperimentSpec) -> Option<sched_sim::SimResult> {
    use sched_sim::{
        Engine, EventEngine, HierarchicalScheduler, OptimisticScheduler, OrderingPolicy, SimConfig,
        SimScheduler,
    };

    if spec.driver.storm().is_some() || spec.driver.openloop().is_some() || spec.batch.is_some() {
        return None;
    }
    let topo = Arc::new(spec.topo.build());
    if topo.nr_cpus() != spec.loads.len() {
        return None;
    }
    let workload = spec.sim_workload(topo.nr_cpus());
    let scheduler: Box<dyn SimScheduler> = if spec.policy.is_hierarchical() {
        Box::new(HierarchicalScheduler::new(spec.policy.build(&topo), Arc::clone(&topo)))
    } else {
        Box::new(OptimisticScheduler::with_topology(spec.policy.build(&topo), Arc::clone(&topo)))
    };
    let mut config = SimConfig::default();
    if let Some(budget) = spec.events {
        config = config.with_event_budget(budget);
    }
    if engine == SimEngine::Event {
        if let Some(seed) = spec.order {
            config = config.with_ordering(OrderingPolicy::Seeded(seed));
        }
    }
    Some(match engine {
        SimEngine::Tick => Engine::new(config, Some(&topo), &workload, scheduler).run(),
        SimEngine::Event => EventEngine::new(config, Some(&topo), &workload, scheduler).run(),
    })
}

/// Runs one spec on the chosen simulation engine, labelling the record
/// with `backend`; with `--trace DIR` set the run is recorded and
/// exported.  Both engines share the scenario construction, the measured
/// quantities and the schema-v6 engine columns.
fn run_sim_spec(
    engine: SimEngine,
    backend: &'static str,
    spec: &ExperimentSpec,
) -> Option<ExperimentRecord> {
    let sink = trace_sink_for(spec.loads.len());
    let record = run_sim_spec_with_sink(engine, backend, spec, sink.as_ref())?;
    if let Some(sink) = &sink {
        export_trace(spec, backend, sink);
    }
    Some(record)
}

/// Runs `spec` on the chosen simulation engine with a recording
/// [`sched_trace::TraceSink`] attached, returning the record together
/// with the drained decision trace.  This is the entry point the
/// fuzzer's sanity leg and the E25 experiment use; `--trace DIR` instead
/// routes through the process-global export directory.
pub fn run_sim_traced(
    engine: SimEngine,
    spec: &ExperimentSpec,
) -> Option<(ExperimentRecord, sched_trace::Trace)> {
    let backend = match engine {
        SimEngine::Tick => "sim",
        SimEngine::Event => "sim-event",
    };
    let sink = sched_trace::TraceSink::recording(spec.loads.len());
    let record = run_sim_spec_with_sink(engine, backend, spec, Some(&sink))?;
    Some((record, sink.drain()))
}

fn run_sim_spec_with_sink(
    engine: SimEngine,
    backend: &'static str,
    spec: &ExperimentSpec,
    sink: Option<&sched_trace::TraceSink>,
) -> Option<ExperimentRecord> {
    use sched_sim::{
        Engine, EventEngine, HierarchicalScheduler, OptimisticScheduler, OrderingPolicy, SimConfig,
        SimScheduler,
    };

    // Like the model, the simulator has no fixed-capacity ring and
    // cannot execute an overflow storm, and no per-steal queue
    // acquisition for a batch sweep to amortise.
    if spec.driver.storm().is_some() || spec.driver.openloop().is_some() || spec.batch.is_some() {
        return None;
    }
    let topo = Arc::new(spec.topo.build());
    if topo.nr_cpus() != spec.loads.len() {
        return None;
    }
    let workload = spec.sim_workload(topo.nr_cpus());
    let scheduler: Box<dyn SimScheduler> = if spec.policy.is_hierarchical() {
        Box::new(HierarchicalScheduler::new(spec.policy.build(&topo), Arc::clone(&topo)))
    } else {
        Box::new(OptimisticScheduler::with_topology(spec.policy.build(&topo), Arc::clone(&topo)))
    };
    let mut config = SimConfig::default();
    if let Some(budget) = spec.events {
        config = config.with_event_budget(budget);
    }
    if engine == SimEngine::Event {
        if let Some(seed) = spec.order {
            config = config.with_ordering(OrderingPolicy::Seeded(seed));
        }
    }

    let start = Instant::now();
    let result = match engine {
        SimEngine::Tick => {
            let mut driver = Engine::new(config, Some(&topo), &workload, scheduler);
            if let Some(sink) = sink {
                driver.set_trace_sink(sink.clone());
            }
            driver.run()
        }
        SimEngine::Event => {
            let mut driver = EventEngine::new(config, Some(&topo), &workload, scheduler);
            if let Some(sink) = sink {
                driver.set_trace_sink(sink.clone());
            }
            driver.run()
        }
    };
    let wall = start.elapsed();

    let mut record = record_base(spec, backend);
    record.threads = workload.nr_threads() as u64;
    record.throughput = result.throughput_ops_per_sec();
    record.throughput_unit = "ops/s";
    record.violating_idle = result.violating_idle_fraction();
    record.migrations = result.balance.migrations;
    record.failures = result.balance.failures;
    record.locality = result.balance.locality();
    record.p99_sched_latency_us = Some(result.latency.quantile(0.99) as f64 / 1e3);
    record.per_node_violating_idle = (0..topo.nr_nodes())
        .map(|n| {
            let cpus: Vec<usize> = topo.cpus_of_node(NodeId(n)).iter().map(|c| c.0).collect();
            result.idle.violation_fraction_of(&cpus)
        })
        .collect();
    record.sim_engine = Some(match engine {
        SimEngine::Tick => "tick",
        SimEngine::Event => "event",
    });
    record.events_processed = Some(result.events_processed);
    record.wall_ms = wall.as_secs_f64() * 1e3;
    Some(record)
}

impl Backend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn run(&self, spec: &ExperimentSpec) -> Option<ExperimentRecord> {
        run_sim_spec(SimEngine::Tick, self.name(), spec)
    }
}

impl Backend for SimEventBackend {
    fn name(&self) -> &'static str {
        "sim-event"
    }

    fn run(&self, spec: &ExperimentSpec) -> Option<ExperimentRecord> {
        run_sim_spec(SimEngine::Event, self.name(), spec)
    }
}

/// Real-thread backends: the spec's load vector on
/// [`sched_rq::MultiQueue`], one OS thread per core per round, lock-less
/// selection and a genuinely contended stealing phase.  Generic over the
/// [`sched_rq::RqBackend`] runqueue discipline, so the mutex and the
/// lock-free deque machines run the *identical* driver:
///
/// * [`RqBackend`] — record backend `"rq"`, mutex runqueues (double-lock
///   stealing); the keys every historical baseline gates on.
/// * [`RqDequeBackend`] — record backend `"rq-deque"`, Chase–Lev
///   runqueues (CAS stealing).
pub struct RqBackend;

/// The lock-free flavour of the real-thread backend (see [`RqBackend`]).
pub struct RqDequeBackend;

/// The threaded twin of [`ModelBackend::run_burst`]: per epoch, drain
/// one core (its tasks "sleep"), run one genuinely concurrent round
/// against the blipped state, then respawn the sleepers on their core.
fn run_rq_burst<B: sched_rq::RqBackend>(
    backend: &'static str,
    spec: &ExperimentSpec,
    burst: BurstSpec,
    mq: MultiQueue<B>,
    topo: &Arc<MachineTopology>,
) -> ExperimentRecord {
    let policy = spec.policy.build(topo);
    let mut record = record_base(spec, backend);
    record.rq_backend = Some(B::backend_name());
    let nr_cores = spec.loads.len();
    let mut node_idle = vec![0.0f64; topo.nr_nodes()];
    let mut violating_core_rounds = 0.0f64;

    let mut now = burst.warmup_ns;
    mq.tick(now);

    let start = Instant::now();
    for epoch in 0..burst.epochs {
        let sleeper = CoreId(epoch % nr_cores);
        let mut parked = Vec::new();
        while let Some(task) = mq.core(sleeper).complete_current() {
            parked.push(task.nice);
        }

        now += burst.epoch_ns;
        mq.tick(now);
        let snapshots = mq.snapshots();
        let idle = snapshots.iter().filter(|s| s.nr_threads == 0).count();
        violating_core_rounds += idle as f64 / nr_cores as f64;
        sample_node_idle(&mut node_idle, topo, |c| snapshots[c].nr_threads == 0);

        let stats = mq.concurrent_round(&policy);
        record.migrations += stats.migrations();
        record.failures += stats.failures();
        record.locality.merge(&StealLocality::from_counts(stats.level_migration_counts()));

        for nice in parked {
            mq.spawn_on_with_nice(sleeper, nice);
        }
    }
    let wall = start.elapsed();

    record.wall_ms = wall.as_secs_f64() * 1e3;
    record.throughput =
        if wall.as_secs_f64() > 0.0 { record.migrations as f64 / wall.as_secs_f64() } else { 0.0 };
    record.violating_idle = violating_core_rounds / burst.epochs.max(1) as f64;
    record.per_node_violating_idle = finish_node_idle(node_idle, burst.epochs as u64);
    record.final_loads = rq_final_loads(&mq.snapshots());
    record
}

/// The overflow-storm driver (see [`StormSpec`]): per epoch, a fan-out
/// burst lands on core 0, `rounds_per_epoch` genuinely concurrent rounds
/// run against it with **no tick** in between, and the machine drains.
/// After every round the settled state is sampled: a core still idle while
/// an overloaded core holds waiting work is the violation this experiment
/// exists to measure — on a conserving overflow discipline the burst is
/// fully reachable, so the post-round idle count is ~0; on one that hides
/// overflow the stranded cores persist for the rest of the epoch.
fn run_rq_storm<B: sched_rq::RqBackend>(
    backend: &'static str,
    spec: &ExperimentSpec,
    storm: StormSpec,
    mq: MultiQueue<B>,
    topo: &Arc<MachineTopology>,
) -> ExperimentRecord {
    let policy = spec.policy.build(topo);
    let mut record = record_base(spec, backend);
    record.rq_backend = Some(B::backend_name());
    let batch = spec.batch.map(BatchK::steal_batch).unwrap_or_default();
    let mut successes = 0u64;
    let nr_cores = spec.loads.len();
    let mut exposure = sched_metrics::OverflowExposure::new(nr_cores);
    let mut node_idle = vec![0.0f64; topo.nr_nodes()];
    let mut now = 0u64;

    let start = Instant::now();
    for _ in 0..storm.epochs {
        // The burst: far past the tiny flavours' ring capacity, so most of
        // it lands wherever the backend parks overflow.
        for _ in 0..storm.fanout {
            mq.spawn_on(CoreId(0));
        }
        for _ in 0..storm.rounds_per_epoch {
            let stats = mq.concurrent_round_batched(&policy, batch);
            record.migrations += stats.migrations();
            record.failures += stats.failures();
            successes += stats.successes();
            record.locality.merge(&StealLocality::from_counts(stats.level_migration_counts()));
            // Sample the *settled* state: idle-after-a-full-round while
            // work waits is exactly the conservation violation.
            let snapshots = mq.snapshots();
            let idle = snapshots.iter().filter(|s| s.nr_threads == 0).count();
            let work_waiting = snapshots.iter().any(|s| s.nr_threads >= 2);
            exposure.record_round(idle, work_waiting);
            if work_waiting {
                sample_node_idle(&mut node_idle, topo, |c| snapshots[c].nr_threads == 0);
            }
        }
        // Epoch boundary: the tick fires (this is where the legacy spill
        // finally re-exposes stranded work) and the machine drains for the
        // next burst.
        now += ROUND_NS;
        mq.tick(now);
        for core in 0..nr_cores {
            while mq.core(CoreId(core)).complete_current().is_some() {}
        }
    }
    let wall = start.elapsed();

    record.wall_ms = wall.as_secs_f64() * 1e3;
    record.throughput =
        if wall.as_secs_f64() > 0.0 { record.migrations as f64 / wall.as_secs_f64() } else { 0.0 };
    record.violating_idle = exposure.violating_fraction();
    record.per_node_violating_idle = finish_node_idle(node_idle, exposure.sampled_rounds());
    if spec.batch.is_some() {
        record.tasks_per_acquisition =
            Some(if successes > 0 { record.migrations as f64 / successes as f64 } else { 0.0 });
    }
    record.final_loads = rq_final_loads(&mq.snapshots());
    record
}

/// Runs one spec on a machine of `B`-discipline runqueues, labelling the
/// record with `backend`; with `--trace DIR` set the run is recorded and
/// exported.
fn run_rq_spec<B: sched_rq::RqBackend>(
    backend: &'static str,
    spec: &ExperimentSpec,
) -> Option<ExperimentRecord> {
    let sink = trace_sink_for(spec.loads.len());
    let record = run_rq_spec_with_sink::<B>(backend, spec, sink.as_ref())?;
    if let Some(sink) = &sink {
        export_trace(spec, backend, sink);
    }
    Some(record)
}

/// Runs `spec` on a machine of `B`-discipline runqueues with a recording
/// [`sched_trace::TraceSink`] attached, returning the record together
/// with the drained decision trace (see [`run_sim_traced`]).
pub fn run_rq_traced<B: sched_rq::RqBackend>(
    backend: &'static str,
    spec: &ExperimentSpec,
) -> Option<(ExperimentRecord, sched_trace::Trace)> {
    let sink = sched_trace::TraceSink::recording(spec.loads.len());
    let record = run_rq_spec_with_sink::<B>(backend, spec, Some(&sink))?;
    Some((record, sink.drain()))
}

fn run_rq_spec_with_sink<B: sched_rq::RqBackend>(
    backend: &'static str,
    spec: &ExperimentSpec,
    sink: Option<&sched_trace::TraceSink>,
) -> Option<ExperimentRecord> {
    // An open-loop stream needs real worker threads pulling work as it
    // arrives; the round-driven runqueue harness has none.
    if spec.driver.openloop().is_some() {
        return None;
    }
    let topo = Arc::new(spec.topo.build());
    if topo.nr_cpus() != spec.loads.len() {
        return None;
    }
    let policy = spec.policy.build(&topo);
    let mut mq: MultiQueue<B> =
        MultiQueue::with_topology_and_tracker(&topo, Arc::clone(&policy.tracker));
    if let Some(sink) = sink {
        mq.set_trace_sink(sink.clone());
    }
    let mut next_task = 0u64;
    for (core, &n) in spec.loads.iter().enumerate() {
        for _ in 0..n {
            mq.spawn_on_with_nice(CoreId(core), nice_of(spec, next_task));
            next_task += 1;
        }
    }

    if let Some(storm) = spec.driver.storm() {
        return Some(run_rq_storm(backend, spec, storm, mq, &topo));
    }
    if let Some(burst) = spec.driver.burst() {
        return Some(run_rq_burst(backend, spec, burst, mq, &topo));
    }

    let mut record = record_base(spec, backend);
    record.rq_backend = Some(B::backend_name());
    let batch = spec.batch.map(BatchK::steal_batch).unwrap_or_default();
    let mut successes = 0u64;
    let nr_cores = spec.loads.len();
    let mut violating_core_rounds = 0.0f64;
    let mut node_idle = vec![0.0f64; topo.nr_nodes()];
    let mut sampled_rounds = 0u64;

    let start = Instant::now();
    for round in 0..=spec.budget_rounds {
        // One balancing period elapses per round (decayed criteria fold
        // it under each runqueue's lock).
        mq.tick((round as u64 + 1) * ROUND_NS);
        if mq.is_work_conserving() {
            record.convergence_rounds = Some(round);
            break;
        }
        if round == spec.budget_rounds {
            break;
        }
        let snapshots = mq.snapshots();
        let idle = snapshots.iter().filter(|s| s.nr_threads == 0).count();
        violating_core_rounds += idle as f64 / nr_cores as f64;
        sample_node_idle(&mut node_idle, &topo, |c| snapshots[c].nr_threads == 0);
        sampled_rounds += 1;
        let stats = if spec.policy.is_hierarchical() {
            mq.hierarchical_round(&policy)
        } else {
            mq.concurrent_round_batched(&policy, batch)
        };
        record.migrations += stats.migrations();
        record.failures += stats.failures();
        successes += stats.successes();
        record.locality.merge(&StealLocality::from_counts(stats.level_migration_counts()));
    }
    let wall = start.elapsed();

    record.wall_ms = wall.as_secs_f64() * 1e3;
    record.throughput =
        if wall.as_secs_f64() > 0.0 { record.migrations as f64 / wall.as_secs_f64() } else { 0.0 };
    record.violating_idle =
        if sampled_rounds == 0 { 0.0 } else { violating_core_rounds / sampled_rounds as f64 };
    record.per_node_violating_idle = finish_node_idle(node_idle, sampled_rounds);
    if spec.batch.is_some() {
        record.tasks_per_acquisition =
            Some(if successes > 0 { record.migrations as f64 / successes as f64 } else { 0.0 });
    }
    record.final_loads = rq_final_loads(&mq.snapshots());
    Some(record)
}

impl Backend for RqBackend {
    fn name(&self) -> &'static str {
        "rq"
    }

    fn run(&self, spec: &ExperimentSpec) -> Option<ExperimentRecord> {
        run_rq_spec::<sched_rq::PerCoreRq<sched_rq::FifoQueue>>(self.name(), spec)
    }
}

impl Backend for RqDequeBackend {
    fn name(&self) -> &'static str {
        "rq-deque"
    }

    fn run(&self, spec: &ExperimentSpec) -> Option<ExperimentRecord> {
        run_rq_spec::<sched_rq::DequeRq>(self.name(), spec)
    }
}

/// Overflow-storm flavour of the lock-free backend: tiny rings
/// ([`sched_rq::TINY_RING_CAPACITY`]) with the shared-injector overflow
/// discipline (record backend `"rq-deque-tiny"`).  Only executes specs
/// carrying a [`StormSpec`] — on every other scenario its behaviour is the
/// regular `rq-deque` machine with a smaller ring, which would only
/// duplicate rows.
pub struct RqTinyDequeBackend;

/// The storm *baseline*: tiny rings with the legacy owner-private spill
/// (record backend `"rq-deque-spill"`).  This is the work-conservation
/// hole kept measurable; E22's headline is the gap between this row's
/// idle-while-spilled and `rq-deque-tiny`'s ~0.
pub struct RqSpillDequeBackend;

impl Backend for RqTinyDequeBackend {
    fn name(&self) -> &'static str {
        "rq-deque-tiny"
    }

    fn run(&self, spec: &ExperimentSpec) -> Option<ExperimentRecord> {
        spec.driver.storm()?;
        run_rq_spec::<sched_rq::TinyDequeRq>(self.name(), spec)
    }
}

impl Backend for RqSpillDequeBackend {
    fn name(&self) -> &'static str {
        "rq-deque-spill"
    }

    fn run(&self, spec: &ExperimentSpec) -> Option<ExperimentRecord> {
        spec.driver.storm()?;
        run_rq_spec::<sched_rq::TinySpillDequeRq>(self.name(), spec)
    }
}

/// The real-executor backend (record backend `"exec"`): OS worker threads
/// on [`sched_exec::Executor`] — the verified ring+injector runqueues with
/// parking/unparking — driven by an open-loop request stream and measuring
/// wall-clock end-to-end latency into the schema-v8 `e2e_p99_us` /
/// `e2e_p999_us` columns.  Only executes specs carrying an
/// [`OpenLoopDriverSpec`]; every other driver shape is round-paced and
/// already covered by the runqueue backends.
pub struct ExecBackend;

/// Ring capacity of the executor backend's per-worker runqueues: far past
/// any queue depth the catalogued open-loop rungs can build, so `dropped`
/// overflow never pollutes a latency measurement.
const EXEC_RING_CAPACITY: usize = 1 << 16;

impl Backend for ExecBackend {
    fn name(&self) -> &'static str {
        "exec"
    }

    fn run(&self, spec: &ExperimentSpec) -> Option<ExperimentRecord> {
        spec.driver.openloop()?;
        let sink = trace_sink_for(spec.loads.len());
        let record = run_exec_spec_with_sink(self.name(), spec, sink.as_ref())?;
        if let Some(sink) = &sink {
            export_trace(spec, self.name(), sink);
        }
        Some(record)
    }
}

/// Runs `spec` on the real executor with a recording
/// [`sched_trace::TraceSink`] attached, returning the record together with
/// the drained decision trace (see [`run_rq_traced`]).  The sink is sized
/// well past the event volume of the catalogued rungs so the sanity
/// checker sees a complete, drop-free trace.
pub fn run_exec_traced(spec: &ExperimentSpec) -> Option<(ExperimentRecord, sched_trace::Trace)> {
    let sink = sched_trace::TraceSink::with_capacity(spec.loads.len(), 1 << 17);
    let record = run_exec_spec_with_sink("exec", spec, Some(&sink))?;
    Some((record, sink.drain()))
}

fn run_exec_spec_with_sink(
    backend: &'static str,
    spec: &ExperimentSpec,
    sink: Option<&sched_trace::TraceSink>,
) -> Option<ExperimentRecord> {
    let openloop = spec.driver.openloop()?;
    let topo = Arc::new(spec.topo.build());
    if topo.nr_cpus() != spec.loads.len() {
        return None;
    }
    let policy = spec.policy.build(&topo);
    let mut config = sched_exec::ExecConfig::new(Arc::clone(&topo), policy)
        .with_ring_capacity(EXEC_RING_CAPACITY);
    if let Some(sink) = sink {
        config = config.with_trace(sink.clone());
    }

    let start = Instant::now();
    let exec = sched_exec::Executor::start(config);
    let generated = sched_exec::drive(&exec, openloop.exec_spec());
    exec.drain();
    let report = exec.shutdown();
    let wall = start.elapsed();

    let mut record = record_base(spec, backend);
    record.threads = generated.submitted;
    record.throughput =
        if wall.as_secs_f64() > 0.0 { report.completed as f64 / wall.as_secs_f64() } else { 0.0 };
    record.throughput_unit = "reqs/s";
    record.migrations = report.stats.migrations();
    record.failures = report.stats.failures();
    record.locality = StealLocality::from_counts(report.stats.level_migration_counts());
    record.e2e_p99_us = Some(report.latency_us.quantile(0.99) as f64);
    record.e2e_p999_us = Some(report.latency_us.quantile(0.999) as f64);
    // Like the simulator, the executor runs its requests to completion —
    // there is no final residency to conserve, so `final_loads` stays
    // empty.
    record.wall_ms = wall.as_secs_f64() * 1e3;
    Some(record)
}

/// Executes specs across a set of backends.
pub struct ExperimentRunner {
    backends: Vec<Box<dyn Backend>>,
}

impl ExperimentRunner {
    /// A runner over the given backends.
    pub fn new(backends: Vec<Box<dyn Backend>>) -> Self {
        ExperimentRunner { backends }
    }

    /// A runner over every backend: model, the simulator under both of its
    /// engines (tick `sim`, event-driven `sim-event`), the real-thread
    /// machine under both runqueue disciplines (mutex `rq`, lock-free
    /// `rq-deque`), the storm-only tiny-ring flavours (`rq-deque-tiny`,
    /// `rq-deque-spill`), which execute nothing except overflow-storm
    /// specs, and the open-loop-only real executor (`exec`) — record
    /// counts for every other experiment are unchanged.
    pub fn with_all_backends() -> Self {
        ExperimentRunner::new(vec![
            Box::new(ModelBackend),
            Box::new(SimBackend),
            Box::new(SimEventBackend),
            Box::new(RqBackend),
            Box::new(RqDequeBackend),
            Box::new(RqTinyDequeBackend),
            Box::new(RqSpillDequeBackend),
            Box::new(ExecBackend),
        ])
    }

    /// The backends, in execution order.
    pub fn backends(&self) -> &[Box<dyn Backend>] {
        &self.backends
    }

    /// Runs one spec on every backend that supports it, honouring the
    /// spec's backend matrix.  Consumes the spec — a run is a terminal use;
    /// callers that reuse one clone it explicitly.
    pub fn run(&self, spec: ExperimentSpec) -> Vec<ExperimentRecord> {
        self.backends
            .iter()
            .filter(|b| match &spec.backends {
                Some(allowed) => allowed.iter().any(|name| name == b.name()),
                None => true,
            })
            .filter_map(|b| b.run(&spec))
            .collect()
    }

    /// Runs every spec on every backend.
    pub fn run_catalog(&self, specs: Vec<ExperimentSpec>) -> Vec<ExperimentRecord> {
        specs.into_iter().flat_map(|spec| self.run(spec)).collect()
    }
}

/// Serializes records (plus a small header) to the `BENCH_results.json`
/// document.
pub fn records_to_json(records: &[ExperimentRecord]) -> String {
    records_to_json_opts(records, false)
}

/// Like [`records_to_json`], but each record also carries its
/// `final_loads` vector — the `--full-records` document (schema v7).
pub fn records_to_json_full(records: &[ExperimentRecord]) -> String {
    records_to_json_opts(records, true)
}

fn records_to_json_opts(records: &[ExperimentRecord], full: bool) -> String {
    object(vec![
        (
            "paper",
            JsonValue::Str("Towards Proving Optimistic Multicore Schedulers (HotOS 2017)".into()),
        ),
        ("harness", JsonValue::Str("sched-bench experiments --json".into())),
        // The version's meaning is documented on `sched_json::SCHEMA_VERSION`
        // (v7: optional final_loads behind --full-records).
        ("schema_version", JsonValue::Int(sched_json::SCHEMA_VERSION)),
        ("records", JsonValue::Array(records.iter().map(|r| r.to_json_opts(full)).collect())),
    ])
    .render_pretty()
}

/// Renders records as one table for terminal display.
pub fn records_table(records: &[ExperimentRecord]) -> Table {
    let mut table = Table::new(
        "Unified runner: every experiment on every backend",
        &[
            "experiment",
            "scenario",
            "backend",
            "policy",
            "tracker",
            "cores",
            "threads",
            "throughput",
            "violating idle %",
            "rounds to WC",
            "migrations",
            "failures",
            "steals smt/llc/node/remote",
            "remote %",
            "wall (ms)",
        ],
    );
    for r in records {
        let levels = r.locality.counts();
        table.row(&[
            r.experiment.clone(),
            r.scenario.clone(),
            r.backend.into(),
            r.policy.clone(),
            r.tracker.clone(),
            r.cores.to_string(),
            r.threads.to_string(),
            format!("{:.0} {}", r.throughput, r.throughput_unit),
            format!("{:.1}%", r.violating_idle * 100.0),
            r.convergence_rounds.map(|r| r.to_string()).unwrap_or_else(|| "-".into()),
            r.migrations.to_string(),
            r.failures.to_string(),
            format!("{}/{}/{}/{}", levels[0], levels[1], levels[2], levels[3]),
            format!("{:.0}%", r.remote_steal_rate() * 100.0),
            format!("{:.2}", r.wall_ms),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(policy: PolicySpec) -> ExperimentSpec {
        ExperimentSpec::builder(ExperimentId::E2, "test: single hot of four")
            .loads(vec![8, 0, 0, 0])
            .topo(TopoSpec::Flat(4))
            .policy(policy)
            .budget_rounds(64)
            .build()
            .expect("a valid spec")
    }

    #[test]
    fn tracker_names_match_the_built_policies() {
        // `tracker_name` is a spec-level copy of what `build(..)` produces
        // (records are stamped before policies are built); this pins the two
        // together so a half-life or format change cannot silently
        // desynchronise them.
        let topo = Arc::new(TopoSpec::Flat(4).build());
        for spec in [
            PolicySpec::Listing1,
            PolicySpec::Greedy,
            PolicySpec::Weighted,
            PolicySpec::StealHalf,
            PolicySpec::NumaAware,
            PolicySpec::TopoAware,
            PolicySpec::Hierarchical,
            PolicySpec::dsl_listing1(),
            PolicySpec::Dsl(sched_dsl::parse(sched_dsl::stdlib::PELT).expect("stdlib PELT parses")),
            PolicySpec::Pelt,
            PolicySpec::PeltWeighted,
            PolicySpec::PeltHalfLife(1),
            PolicySpec::PeltHalfLife(4),
            PolicySpec::PeltHalfLife(16),
            PolicySpec::PeltHalfLife(64),
            PolicySpec::PeltHalfLife(12),
        ] {
            assert_eq!(
                spec.tracker_name(),
                spec.build(&topo).tracker.name(),
                "{spec:?}: tracker_name drifted from the built tracker"
            );
        }
    }

    #[test]
    fn builder_rejects_illegal_combinations() {
        // Load vector sized to the wrong machine.
        let err = ExperimentSpec::builder(ExperimentId::E2, "bad loads")
            .loads(vec![1, 2, 3])
            .topo(TopoSpec::Flat(4))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("cores"), "{err}");

        // A steal batch under a burst driver used to be silently ignored;
        // now it is a build error.
        let err = ExperimentSpec::builder(ExperimentId::E23, "batch under burst")
            .loads(vec![2; 4])
            .topo(TopoSpec::Flat(4))
            .driver(Driver::Burst(BurstSpec::new(8, 1_000_000, 8_000_000)))
            .batch(BatchK::Fixed(2))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("steal batch"), "{err}");

        // Batch + replay and batch + storm stay valid.
        assert!(ExperimentSpec::builder(ExperimentId::E23, "batch replay")
            .loads(vec![8, 0, 0, 0])
            .topo(TopoSpec::Flat(4))
            .batch(BatchK::HalfImbalance)
            .build()
            .is_ok());
        assert!(ExperimentSpec::builder(ExperimentId::E23, "batch storm")
            .loads(vec![1, 0, 0, 0])
            .topo(TopoSpec::Flat(4))
            .driver(Driver::Storm(StormSpec { epochs: 2, fanout: 8, rounds_per_epoch: 1 }))
            .batch(BatchK::Fixed(2))
            .build()
            .is_ok());

        // A backend matrix naming a simulator backend on a storm or batch
        // spec is rejected at build time (the sim engines cannot execute
        // either), instead of silently producing no record.
        let err = ExperimentSpec::builder(ExperimentId::E22, "sim-event storm")
            .loads(vec![1, 0, 0, 0])
            .topo(TopoSpec::Flat(4))
            .driver(Driver::Storm(StormSpec { epochs: 2, fanout: 8, rounds_per_epoch: 1 }))
            .backends(vec!["sim-event".into()])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("simulator backends"), "{err}");
        let err = ExperimentSpec::builder(ExperimentId::E23, "sim batch")
            .loads(vec![8, 0, 0, 0])
            .topo(TopoSpec::Flat(4))
            .batch(BatchK::Fixed(2))
            .backends(vec!["sim".into(), "rq".into()])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("simulator backends"), "{err}");

        // An event budget on a storm driver has no backend to apply to.
        let err = ExperimentSpec::builder(ExperimentId::E22, "budget storm")
            .loads(vec![1, 0, 0, 0])
            .topo(TopoSpec::Flat(4))
            .driver(Driver::Storm(StormSpec { epochs: 2, fanout: 8, rounds_per_epoch: 1 }))
            .events(1_000)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("event budget"), "{err}");

        // An inline policy that does not compile is rejected at build time.
        let bogus = sched_dsl::parse(
            "policy bogus { filter = victim.load + 1; choose = first; steal = 1; }",
        );
        if let Ok(def) = bogus {
            let err = ExperimentSpec::builder(ExperimentId::E1, "bogus dsl")
                .loads(vec![1, 0])
                .topo(TopoSpec::Flat(2))
                .policy(PolicySpec::Dsl(def))
                .build()
                .unwrap_err();
            assert!(err.to_string().contains("compile"), "{err}");
        }
    }

    #[test]
    fn all_backends_run_the_same_spec() {
        let spec = small_spec(PolicySpec::Listing1);
        let runner = ExperimentRunner::with_all_backends();
        let records = runner.run(spec);
        assert_eq!(records.len(), 5);
        let backends: Vec<&str> = records.iter().map(|r| r.backend).collect();
        assert_eq!(backends, vec!["model", "sim", "sim-event", "rq", "rq-deque"]);
        // Schema v4: the rq records carry their runqueue discipline.
        let flavour = |backend: &str| {
            records.iter().find(|r| r.backend == backend).and_then(|r| r.rq_backend)
        };
        assert_eq!(flavour("rq"), Some("mutex"));
        assert_eq!(flavour("rq-deque"), Some("deque"));
        assert_eq!(flavour("model"), None);
        // Schema v6: only the sim records carry their engine and event count.
        let engine = |backend: &str| {
            records.iter().find(|r| r.backend == backend).and_then(|r| r.sim_engine)
        };
        assert_eq!(engine("sim"), Some("tick"));
        assert_eq!(engine("sim-event"), Some("event"));
        assert_eq!(engine("model"), None);
        assert_eq!(engine("rq"), None);
        for r in &records {
            assert_eq!(r.experiment, "e2");
            assert_eq!(r.cores, 4);
            assert!(r.threads >= 8);
            assert!(r.migrations > 0, "{}: balancing must migrate work", r.backend);
            if r.backend.starts_with("sim") {
                let events = r.events_processed.expect("sim records count events");
                assert!(events > 0, "{}: a run processes events", r.backend);
            } else {
                assert_eq!(r.events_processed, None);
            }
        }
        // The model and rq backends must both converge, and — single hot
        // core, three idle thieves — need at least three migrations.
        for r in records.iter().filter(|r| !r.backend.starts_with("sim")) {
            assert!(r.convergence_rounds.is_some(), "{} did not converge", r.backend);
            assert!(r.migrations >= 3);
            // The replayed tasks must all still be there, spread out.
            assert_eq!(r.final_loads.iter().sum::<usize>(), 8, "{}: tasks conserved", r.backend);
            assert!(
                r.final_loads.iter().all(|&l| l <= 8),
                "{}: no core may end above the initial maximum",
                r.backend
            );
        }
    }

    #[test]
    fn sim_engines_agree_record_for_record() {
        // Tick/event parity at the record level: same workload, same
        // scheduler, same measured quantities.  (The sim crate pins the
        // engines against each other on richer scenarios; this pins the
        // runner's plumbing — config, workload construction, stamping.)
        let runner = ExperimentRunner::with_all_backends();
        for policy in [PolicySpec::Listing1, PolicySpec::Pelt, PolicySpec::Hierarchical] {
            let mut spec = small_spec(policy);
            spec.backends = Some(vec!["sim".into(), "sim-event".into()]);
            let records = runner.run(spec);
            assert_eq!(records.len(), 2);
            let (tick, event) = (&records[0], &records[1]);
            assert_eq!(tick.backend, "sim");
            assert_eq!(event.backend, "sim-event");
            assert_eq!(tick.throughput, event.throughput, "{}", tick.policy);
            assert_eq!(tick.violating_idle, event.violating_idle, "{}", tick.policy);
            assert_eq!(tick.migrations, event.migrations, "{}", tick.policy);
            assert_eq!(tick.failures, event.failures, "{}", tick.policy);
            assert_eq!(tick.locality.counts(), event.locality.counts(), "{}", tick.policy);
            assert_eq!(tick.p99_sched_latency_us, event.p99_sched_latency_us, "{}", tick.policy);
            assert_eq!(
                tick.per_node_violating_idle, event.per_node_violating_idle,
                "{}",
                tick.policy
            );
            // The event engine must do strictly less bookkeeping.
            assert!(
                event.events_processed.unwrap() < tick.events_processed.unwrap(),
                "{}: event engine must process fewer events ({:?} vs {:?})",
                tick.policy,
                event.events_processed,
                tick.events_processed
            );
        }
    }

    #[test]
    fn an_event_budget_truncates_both_sim_engines() {
        let mut spec = small_spec(PolicySpec::Listing1);
        spec.backends = Some(vec!["sim".into(), "sim-event".into()]);
        spec.events = Some(10);
        let runner = ExperimentRunner::with_all_backends();
        let records = runner.run(spec);
        assert_eq!(records.len(), 2);
        for r in &records {
            assert_eq!(r.events_processed, Some(10), "{}: the cap is recorded", r.backend);
        }
    }

    #[test]
    fn an_order_seed_reorders_only_the_event_engine() {
        // The `order` seed changes the same-time tie-break of the event
        // engine; the tick engine ignores it.  Task conservation holds
        // under any order: all eight tasks finish either way.
        let runner = ExperimentRunner::with_all_backends();
        let mut spec = small_spec(PolicySpec::Listing1);
        spec.backends = Some(vec!["sim".into(), "sim-event".into()]);
        let baseline = runner.run(spec.clone());
        spec.order = Some(7);
        let seeded = runner.run(spec);
        // Tick records are untouched by the seed.
        assert_eq!(baseline[0].migrations, seeded[0].migrations);
        assert_eq!(baseline[0].throughput, seeded[0].throughput);
        // The seeded event run still finishes every task (throughput is
        // ops over simulated time, and every op completes).
        assert!(seeded[1].throughput > 0.0);
    }

    #[test]
    fn the_backend_matrix_restricts_execution() {
        let mut spec = small_spec(PolicySpec::Listing1);
        spec.backends = Some(vec!["model".into(), "rq-deque".into()]);
        let runner = ExperimentRunner::with_all_backends();
        let records = runner.run(spec);
        let backends: Vec<&str> = records.iter().map(|r| r.backend).collect();
        assert_eq!(backends, vec!["model", "rq-deque"]);
    }

    #[test]
    fn batch_specs_run_on_the_rq_backends_only_and_measure_tasks_per_acquisition() {
        let spec = ExperimentSpec::builder(ExperimentId::E23, "test: batched fan-out")
            .loads(vec![16, 0, 0, 0])
            .topo(TopoSpec::Flat(4))
            .budget_rounds(64)
            .batch(BatchK::Fixed(1))
            .build()
            .expect("a valid batch spec");
        let runner = ExperimentRunner::with_all_backends();
        let records = runner.run(spec);
        let backends: Vec<&str> = records.iter().map(|r| r.backend).collect();
        assert_eq!(backends, vec!["rq", "rq-deque"], "model/sim cannot execute a batch sweep");
        for r in &records {
            assert_eq!(r.steal_batch_k, Some("1"));
            let tpa = r.tasks_per_acquisition.expect("batch records measure the amortisation");
            assert!(
                (tpa - 1.0).abs() < 1e-9,
                "{}: k=1 moves exactly one task per successful acquisition, got {tpa}",
                r.backend
            );
        }
        // Non-batch records keep the schema-v5 fields null.
        let plain = runner.run(small_spec(PolicySpec::Listing1));
        for r in &plain {
            assert_eq!(r.steal_batch_k, None);
            assert_eq!(r.tasks_per_acquisition, None);
        }
    }

    #[test]
    fn dsl_policy_behaves_like_handwritten_listing1_on_the_model() {
        let runner = ExperimentRunner::new(vec![Box::new(ModelBackend)]);
        let handwritten = &runner.run(small_spec(PolicySpec::Listing1))[0];
        let compiled = &runner.run(small_spec(PolicySpec::dsl_listing1()))[0];
        assert_eq!(compiled.policy, "dsl(listing1)");
        assert_eq!(handwritten.convergence_rounds, compiled.convergence_rounds);
        assert_eq!(handwritten.migrations, compiled.migrations);
        assert_eq!(handwritten.failures, compiled.failures);
    }

    #[test]
    fn json_document_has_the_required_fields() {
        let runner = ExperimentRunner::new(vec![Box::new(ModelBackend)]);
        let records = runner.run(small_spec(PolicySpec::Listing1));
        let json = records_to_json(&records);
        for key in [
            "\"experiment\"",
            "\"scenario\"",
            "\"backend\"",
            "\"cores\"",
            "\"throughput\"",
            "\"violating_idle\"",
            "\"convergence_rounds\"",
            "\"steals_smt\"",
            "\"steals_remote\"",
            "\"remote_steal_rate\"",
            "\"per_node_violating_idle\"",
            "\"rq_backend\"",
            "\"p99_sched_latency_us\"",
            "\"steal_batch_k\"",
            "\"tasks_per_acquisition\"",
            "\"sim_engine\"",
            "\"events_processed\"",
            "\"records\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // `final_loads` is runner-internal state for invariant checks, not
        // part of the schema-v5 record.
        assert!(!json.contains("final_loads"), "final_loads must not be serialized");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    /// The `--full-records` document (schema v7) serializes `final_loads`
    /// and round-trips through the workspace JSON parser exactly.
    #[test]
    fn full_records_serialize_final_loads_and_round_trip() {
        let runner = ExperimentRunner::new(vec![Box::new(ModelBackend)]);
        let records = runner.run(small_spec(PolicySpec::Listing1));
        assert!(records.iter().all(|r| !r.final_loads.is_empty()), "the model reports loads");
        let json = records_to_json_full(&records);
        assert!(json.contains("\"final_loads\""));
        let parsed = sched_json::parse(&json).expect("valid JSON");
        assert_eq!(
            parsed.get("schema_version").and_then(|v| v.as_f64()),
            Some(sched_json::SCHEMA_VERSION as f64)
        );
        let rows = parsed.get("records").and_then(|r| r.as_array()).expect("records array");
        assert_eq!(rows.len(), records.len());
        for (row, record) in rows.iter().zip(&records) {
            let loads: Vec<usize> = row
                .get("final_loads")
                .and_then(|l| l.as_array())
                .expect("final_loads array")
                .iter()
                .map(|v| v.as_f64().expect("numeric load") as usize)
                .collect();
            assert_eq!(&loads, &record.final_loads, "final loads round-trip");
        }
    }

    #[test]
    fn records_table_has_one_row_per_record() {
        let runner = ExperimentRunner::new(vec![Box::new(ModelBackend)]);
        let records = runner
            .run_catalog(vec![small_spec(PolicySpec::Listing1), small_spec(PolicySpec::Weighted)]);
        assert_eq!(records_table(&records).nr_rows(), 2);
    }
}
