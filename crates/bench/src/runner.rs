//! The unified experiment runner: one declarative scenario description,
//! three execution backends.
//!
//! The paper's claims live at three altitudes — the abstract model
//! (`sched-core` balancing rounds), a discrete-event machine (`sched-sim`)
//! and real contending OS threads (`sched-rq`).  Historically each
//! experiment hand-rolled its own driver for one altitude; this module
//! declares every experiment **once** as an [`ExperimentSpec`] and executes
//! it against any [`Backend`], so a scenario measured in the model can be
//! re-measured, unchanged, on the simulator and on real threads.
//!
//! [`ExperimentRunner::run_catalog`] produces flat [`ExperimentRecord`]s;
//! the `experiments --json` binary serializes them to `BENCH_results.json`,
//! which is the machine-readable perf trajectory later PRs regress against.

use std::sync::Arc;
use std::time::Instant;

use sched_core::prelude::*;
use sched_metrics::{StealLocality, Table};
use sched_rq::MultiQueue;
use sched_topology::{MachineTopology, NodeId, TopologyBuilder};
use sched_workloads::{
    ImbalancePattern, OltpWorkload, Phase as WorkloadPhase, ScientificWorkload, StaticImbalance,
    ThreadSpec, Workload,
};

use sched_json::{object, JsonValue};

use crate::experiments::ExperimentId;

/// CPU time given to each synthetic task when a load-vector scenario is
/// replayed on the simulator backend.
const SYNTH_TASK_NS: u64 = 2_000_000;

/// Logical time between balancing rounds on the model and runqueue
/// backends (CFS's balancing period is on this order); decayed trackers
/// fold this much elapsed time per round.
const ROUND_NS: u64 = 1_000_000;

/// Half-life used by the catalogued PELT policies.
pub const PELT_HALF_LIFE_NS: u64 = 8_000_000;

/// Niceness cycle used by mixed-importance scenarios (E18): every third
/// task is important, normal, then background.
const MIXED_NICE: [i8; 3] = [-10, 0, 10];

/// How a scenario's policy is built (policies are not `Clone`, and each
/// backend needs its own instance, so the *recipe* is what the spec holds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicySpec {
    /// The paper's Listing 1: `delta >= 2` filter, max-load choice, steal one.
    Listing1,
    /// The refuted greedy filter (`victim load >= 2`, ignores the thief).
    Greedy,
    /// Weighted-load variant of Listing 1.
    Weighted,
    /// Listing 1 with a CFS-style steal-half-the-imbalance step 3.
    StealHalf,
    /// Listing 1 with a NUMA-aware step-2 choice over the scenario topology.
    NumaAware,
    /// Listing 1 with the distance-ordered [`TopologyAwareChoice`] step 2
    /// (per-level thresholds and failure backoff), executed as flat rounds.
    TopoAware,
    /// The same topology-aware policy, but executed as *hierarchical*
    /// rounds: one level-capped pass per steal level, innermost first, on
    /// every backend (model `HierarchicalRound`, sim
    /// `HierarchicalScheduler`, rq `hierarchical_round`).
    Hierarchical,
    /// Listing 1 compiled from its DSL source (`sched_dsl::stdlib::LISTING1`).
    DslListing1,
    /// Listing 1 over a PELT-style decayed thread count
    /// ([`sched_core::Policy::pelt`], half-life [`PELT_HALF_LIFE_NS`]).
    Pelt,
    /// The weighted balancer over a PELT-style decayed weighted load
    /// ([`sched_core::Policy::pelt_weighted`]).
    PeltWeighted,
    /// Listing 1 over a PELT-decayed thread count with an explicit
    /// half-life in milliseconds (the E21 sensitivity sweep).  Only the
    /// swept values (1, 4, 16, 64 ms) are representable, so record names
    /// can stay `'static`.
    PeltHalfLife(u32),
}

impl PolicySpec {
    /// Display name used in records and tables.
    pub fn name(self) -> &'static str {
        match self {
            PolicySpec::Listing1 => "listing1",
            PolicySpec::Greedy => "greedy",
            PolicySpec::Weighted => "weighted",
            PolicySpec::StealHalf => "listing1+steal_half",
            PolicySpec::NumaAware => "listing1+numa_choice",
            PolicySpec::TopoAware => "listing1+topo_choice",
            PolicySpec::Hierarchical => "hierarchical(topo)",
            PolicySpec::DslListing1 => "dsl(listing1)",
            PolicySpec::Pelt => "listing1+pelt",
            PolicySpec::PeltWeighted => "weighted+pelt",
            PolicySpec::PeltHalfLife(ms) => match ms {
                1 => "listing1+pelt(1ms)",
                4 => "listing1+pelt(4ms)",
                16 => "listing1+pelt(16ms)",
                64 => "listing1+pelt(64ms)",
                other => panic!("unswept pelt half-life {other} ms (add it to the name table)"),
            },
        }
    }

    /// Name of the load criterion this policy balances (the `tracker` field
    /// of the JSON records, schema v3).
    pub fn tracker_name(self) -> &'static str {
        match self {
            PolicySpec::Weighted => "weighted",
            PolicySpec::Pelt => "pelt(nr_threads, 8ms)",
            PolicySpec::PeltWeighted => "pelt(weighted, 8ms)",
            PolicySpec::PeltHalfLife(ms) => match ms {
                1 => "pelt(nr_threads, 1ms)",
                4 => "pelt(nr_threads, 4ms)",
                16 => "pelt(nr_threads, 16ms)",
                64 => "pelt(nr_threads, 64ms)",
                other => panic!("unswept pelt half-life {other} ms (add it to the name table)"),
            },
            _ => "nr_threads",
        }
    }

    /// Returns `true` if backends must execute this spec as hierarchical
    /// (domain-ordered) rounds rather than flat machine-wide ones.
    pub fn is_hierarchical(self) -> bool {
        matches!(self, PolicySpec::Hierarchical)
    }

    /// Builds a fresh policy instance for one backend run.
    pub fn build(self, topo: &Arc<MachineTopology>) -> Policy {
        match self {
            PolicySpec::Listing1 => Policy::simple(),
            PolicySpec::Greedy => Policy::greedy(),
            PolicySpec::Weighted => Policy::weighted(),
            PolicySpec::StealHalf => Policy::simple()
                .with_steal(Box::new(StealHalfImbalance::new(LoadMetric::NrThreads))),
            PolicySpec::NumaAware => Policy::simple().with_choice(Box::new(NumaAwareChoice::new(
                Arc::clone(topo),
                LoadMetric::NrThreads,
            ))),
            PolicySpec::TopoAware | PolicySpec::Hierarchical => Policy::simple().with_choice(
                Box::new(TopologyAwareChoice::new(Arc::clone(topo), LoadMetric::NrThreads)),
            ),
            PolicySpec::DslListing1 => {
                sched_dsl::compile_source(sched_dsl::stdlib::LISTING1)
                    .expect("the stdlib Listing 1 source compiles")
                    .policy
            }
            PolicySpec::Pelt => Policy::pelt(PELT_HALF_LIFE_NS),
            PolicySpec::PeltWeighted => Policy::pelt_weighted(PELT_HALF_LIFE_NS),
            PolicySpec::PeltHalfLife(ms) => Policy::pelt(u64::from(ms) * 1_000_000),
        }
    }
}

/// The machine a scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoSpec {
    /// `cores` identical cores on one node.
    Flat(usize),
    /// The dual-socket 16-core server of the wasted-cores study.
    DualSocket,
    /// The eight-node NUMA machine of the hierarchical experiment.
    EightNode,
}

impl TopoSpec {
    /// Builds the topology.
    pub fn build(self) -> MachineTopology {
        match self {
            TopoSpec::Flat(cores) => {
                TopologyBuilder::new().sockets(1).cores_per_socket(cores).build()
            }
            TopoSpec::DualSocket => TopologyBuilder::new().sockets(2).cores_per_socket(8).build(),
            TopoSpec::EightNode => TopologyBuilder::eight_node_numa(),
        }
    }
}

/// The richer simulator workloads a scenario may carry on top of its load
/// vector (E9/E10 reproduce the paper's motivation numbers with these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Fork-join scientific workload sized to the machine.
    Scientific,
    /// OLTP workload sized to the machine.
    Oltp,
}

/// A bursty on/off scenario layered over a spec's load vector: each epoch,
/// one core's tasks briefly go to sleep (its instantaneous load drops to
/// zero) and return at the epoch's end.  The time-averaged load of every
/// core is identical, so migrations performed during the blips are pure
/// churn — the shape experiment E17 uses to separate instantaneous from
/// decayed load criteria.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstSpec {
    /// Number of sleep/wake epochs (one balancing round each).
    pub epochs: usize,
    /// Logical time between epochs, in nanoseconds.  Kept well below the
    /// PELT half-life so decayed loads barely move across one blip.
    pub epoch_ns: u64,
    /// Logical warm-up time before the first epoch, so decayed trackers
    /// have converged to the steady per-core load when the blinking starts.
    pub warmup_ns: u64,
}

/// An overflow-storm driver replacing the run-to-convergence loop: each
/// epoch, a fan-out burst lands on core 0 and a fixed number of genuinely
/// concurrent balancing rounds runs against it **without any tick** — so
/// whatever the runqueue backend does with ring overflow is exactly what
/// thieves see — then the machine drains and the next burst fires.
///
/// The headline metric is [`sched_metrics::OverflowExposure`]: the
/// fraction of the machine left idle *after* each round while an
/// overloaded core still held waiting work.  A backend whose overflow
/// stays stealable (the shared injector) pins this at ~0; one that hides
/// overflow behind the tick (the legacy private spill) strands idle cores
/// for the rest of every epoch.  Only the runqueue backends execute storm
/// specs — the model and simulator have no ring to overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StormSpec {
    /// Number of burst/balance/drain epochs.
    pub epochs: usize,
    /// Tasks spawned onto core 0 at each epoch's start — sized well past
    /// the tiny flavours' ring capacity so most of the burst overflows.
    pub fanout: usize,
    /// Concurrent balancing rounds per epoch, run with no tick in between.
    pub rounds_per_epoch: usize,
}

/// Steal-batch sizing for the E23 sweep: how many threads one successful
/// steal decision may claim in a single queue acquisition.  Maps onto
/// [`sched_rq::StealBatch`]; only the runqueue backends execute batch
/// specs — the model and simulator balance one abstract thread per steal
/// by construction, so a batched row there would measure nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchK {
    /// A fixed batch of `k` per acquisition; `Fixed(1)` is the Listing 1
    /// `stealOneThread` baseline every other point is compared against.
    Fixed(usize),
    /// Half the observed thief/victim imbalance (at least one) — the
    /// convergence-preserving transfer that leaves neither side more
    /// loaded than the other was.
    HalfImbalance,
}

impl BatchK {
    /// The swept batch sizes, in sweep order.
    pub const SWEEP: [BatchK; 5] = [
        BatchK::Fixed(1),
        BatchK::Fixed(2),
        BatchK::Fixed(4),
        BatchK::Fixed(8),
        BatchK::HalfImbalance,
    ];

    /// Stable record label for the JSON rows (schema v5 `steal_batch_k`).
    pub fn name(self) -> &'static str {
        match self {
            BatchK::Fixed(1) => "1",
            BatchK::Fixed(2) => "2",
            BatchK::Fixed(4) => "4",
            BatchK::Fixed(8) => "8",
            BatchK::Fixed(_) => "fixed",
            BatchK::HalfImbalance => "half",
        }
    }

    /// The runqueue-layer transfer-sizing policy this sweep point selects.
    fn steal_batch(self) -> sched_rq::StealBatch {
        match self {
            BatchK::Fixed(k) => sched_rq::StealBatch::Fixed(k),
            BatchK::HalfImbalance => sched_rq::StealBatch::HalfImbalance,
        }
    }
}

/// One experiment, declared once, executable on every backend.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Which experiment of the per-experiment index this scenario belongs to.
    pub id: ExperimentId,
    /// Human-readable scenario name.
    pub scenario: &'static str,
    /// Initial per-core load vector (`loads[i]` threads start on core `i`).
    pub loads: Vec<usize>,
    /// Machine shape; `loads.len()` must equal its CPU count.
    pub topo: TopoSpec,
    /// Policy recipe.
    pub policy: PolicySpec,
    /// Simulator workload overriding the synthetic load replay, if any.
    pub workload: Option<WorkloadKind>,
    /// Balancing-round budget for the model and runqueue backends.
    pub budget_rounds: usize,
    /// Bursty on/off driver replacing the run-to-convergence loop, if any.
    pub burst: Option<BurstSpec>,
    /// Overflow-storm driver replacing the run-to-convergence loop, if any
    /// (runqueue backends only).
    pub storm: Option<StormSpec>,
    /// Give the initial tasks mixed niceness (cycling important / normal /
    /// background) instead of uniform `nice 0`.
    pub mixed_nice: bool,
    /// Steal-batch sizing override for the E23 sweep, if any (runqueue
    /// backends only; `None` keeps the one-thread-per-steal default).
    pub batch: Option<BatchK>,
}

impl ExperimentSpec {
    /// Total threads in the initial load vector.
    pub fn nr_threads(&self) -> u64 {
        self.loads.iter().map(|&l| l as u64).sum()
    }

    /// The workload the simulator backend runs for this spec.
    fn sim_workload(&self, nr_cores: usize) -> Workload {
        if let Some(burst) = self.burst {
            // The simulator realises the on/off shape natively: blinker
            // threads whose compute/sleep cycles open the same transient
            // imbalances the model/rq drivers script by hand.
            return sched_workloads::OnOffWorkload {
                nr_cores,
                blinkers_per_core: 2,
                cycles: burst.epochs.min(24),
                on_ns: burst.epoch_ns * 2,
                off_ns: burst.epoch_ns * 2,
                jitter: 0.4,
                seed: 17,
            }
            .generate();
        }
        match self.workload {
            Some(WorkloadKind::Scientific) => ScientificWorkload {
                nr_threads: nr_cores,
                iterations: 8,
                phase_ns: 4_000_000,
                jitter: 0.05,
                seed: 42,
                fork_on_core: Some(0),
            }
            .generate(),
            Some(WorkloadKind::Oltp) => OltpWorkload {
                nr_workers: nr_cores * 2,
                transactions: 40,
                service_ns: 500_000,
                think_ns: 250_000,
                jitter: 0.2,
                seed: 7,
                initial_spread: 4,
            }
            .generate(),
            None => {
                // Replay the load vector: `loads[i]` independent tasks of
                // fixed CPU time pinned to origin core `i`.
                let mut workload = Workload::new(format!("synthetic({})", self.scenario));
                let mut index = 0usize;
                for (core, &n) in self.loads.iter().enumerate() {
                    for _ in 0..n {
                        workload.push(ThreadSpec {
                            nice: if self.mixed_nice {
                                MIXED_NICE[index % MIXED_NICE.len()]
                            } else {
                                0
                            },
                            arrival_ns: 0,
                            origin_core: Some(core),
                            phases: vec![WorkloadPhase::Compute(SYNTH_TASK_NS)],
                        });
                        index += 1;
                    }
                }
                workload
            }
        }
    }
}

/// What one backend measured for one spec.
#[derive(Debug, Clone)]
pub struct ExperimentRecord {
    /// Experiment id, lowercase (`"e5"`).
    pub experiment: String,
    /// Scenario name from the spec.
    pub scenario: String,
    /// Backend name (`"model"`, `"sim"`, `"rq"`).
    pub backend: &'static str,
    /// Policy name from the spec.
    pub policy: &'static str,
    /// Name of the load criterion the policy balanced (schema v3).
    pub tracker: &'static str,
    /// Machine size.
    pub cores: usize,
    /// Initial thread count.
    pub threads: u64,
    /// Backend-specific throughput (see `throughput_unit`).
    pub throughput: f64,
    /// What `throughput` counts: `"migrations/s"` (model, rq, wall-clock)
    /// or `"ops/s"` (sim, simulated time).
    pub throughput_unit: &'static str,
    /// Fraction of core-time idle while another core was overloaded.
    pub violating_idle: f64,
    /// Rounds to reach work conservation, if the backend converged.
    pub convergence_rounds: Option<usize>,
    /// Successful steals.
    pub migrations: u64,
    /// Failed steal attempts (stale selections re-checked away).
    pub failures: u64,
    /// Where the migrated threads came from, bucketed by steal level.
    pub locality: StealLocality,
    /// Runqueue discipline of the backend (`"mutex"`, `"deque"`), for the
    /// rq backends only (schema v4).
    pub rq_backend: Option<&'static str>,
    /// p99 scheduling latency in microseconds — the time between a thread
    /// becoming runnable and first running (schema v4).  Only the
    /// simulator backend carries a latency recorder; `None` elsewhere.
    pub p99_sched_latency_us: Option<f64>,
    /// Batch-size label of the E23 sweep (`"1"`, `"2"`, `"4"`, `"8"`,
    /// `"half"`; schema v5).  `None` on non-batch records.
    pub steal_batch_k: Option<&'static str>,
    /// Threads migrated per successful steal acquisition (schema v5).
    /// `migrations / successes`: exactly 1.0 at `k = 1`, strictly above it
    /// when batching amortises acquisitions.  Only batch-sweep records
    /// measure it; `None` elsewhere.
    pub tasks_per_acquisition: Option<f64>,
    /// Violating-idle fraction per NUMA node, in node order.
    pub per_node_violating_idle: Vec<f64>,
    /// Wall-clock cost of the run, in milliseconds.
    pub wall_ms: f64,
}

impl ExperimentRecord {
    /// Fraction of level-attributed migrations that crossed a NUMA node
    /// boundary.
    pub fn remote_steal_rate(&self) -> f64 {
        self.locality.remote_rate()
    }

    /// The record as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let levels = self.locality.counts();
        object(vec![
            ("experiment", JsonValue::Str(self.experiment.clone())),
            ("scenario", JsonValue::Str(self.scenario.clone())),
            ("backend", JsonValue::Str(self.backend.into())),
            ("policy", JsonValue::Str(self.policy.into())),
            ("tracker", JsonValue::Str(self.tracker.into())),
            ("cores", JsonValue::Int(self.cores as i64)),
            ("threads", JsonValue::Int(self.threads as i64)),
            ("throughput", JsonValue::Float(self.throughput)),
            ("throughput_unit", JsonValue::Str(self.throughput_unit.into())),
            ("violating_idle", JsonValue::Float(self.violating_idle)),
            (
                "convergence_rounds",
                match self.convergence_rounds {
                    Some(r) => JsonValue::Int(r as i64),
                    None => JsonValue::Null,
                },
            ),
            ("migrations", JsonValue::Int(self.migrations as i64)),
            ("failures", JsonValue::Int(self.failures as i64)),
            ("steals_smt", JsonValue::Int(levels[0] as i64)),
            ("steals_llc", JsonValue::Int(levels[1] as i64)),
            ("steals_node", JsonValue::Int(levels[2] as i64)),
            ("steals_remote", JsonValue::Int(levels[3] as i64)),
            ("remote_steal_rate", JsonValue::Float(self.remote_steal_rate())),
            (
                "rq_backend",
                match self.rq_backend {
                    Some(name) => JsonValue::Str(name.into()),
                    None => JsonValue::Null,
                },
            ),
            (
                "p99_sched_latency_us",
                match self.p99_sched_latency_us {
                    Some(us) => JsonValue::Float(us),
                    None => JsonValue::Null,
                },
            ),
            (
                "steal_batch_k",
                match self.steal_batch_k {
                    Some(k) => JsonValue::Str(k.into()),
                    None => JsonValue::Null,
                },
            ),
            (
                "tasks_per_acquisition",
                match self.tasks_per_acquisition {
                    Some(t) => JsonValue::Float(t),
                    None => JsonValue::Null,
                },
            ),
            (
                "per_node_violating_idle",
                JsonValue::Array(
                    self.per_node_violating_idle.iter().map(|&v| JsonValue::Float(v)).collect(),
                ),
            ),
            ("wall_ms", JsonValue::Float(self.wall_ms)),
        ])
    }
}

/// One way of executing an [`ExperimentSpec`].
pub trait Backend {
    /// Short name used in records (`"model"`, `"sim"`, `"rq"`).
    fn name(&self) -> &'static str;

    /// Executes the spec, or returns `None` if this backend cannot run it.
    fn run(&self, spec: &ExperimentSpec) -> Option<ExperimentRecord>;
}

fn record_base(spec: &ExperimentSpec, backend: &'static str) -> ExperimentRecord {
    ExperimentRecord {
        experiment: format!("{:?}", spec.id).to_ascii_lowercase(),
        scenario: spec.scenario.to_string(),
        backend,
        policy: spec.policy.name(),
        tracker: spec.policy.tracker_name(),
        cores: spec.loads.len(),
        threads: spec.nr_threads(),
        throughput: 0.0,
        throughput_unit: "migrations/s",
        violating_idle: 0.0,
        convergence_rounds: None,
        migrations: 0,
        failures: 0,
        locality: StealLocality::new(),
        rq_backend: None,
        p99_sched_latency_us: None,
        steal_batch_k: spec.batch.map(BatchK::name),
        tasks_per_acquisition: None,
        per_node_violating_idle: Vec::new(),
        wall_ms: 0.0,
    }
}

/// Samples the per-node idle fraction of one pre-convergence round into the
/// running per-node violation accumulators.
fn sample_node_idle(acc: &mut [f64], topo: &MachineTopology, is_idle: impl Fn(usize) -> bool) {
    for (node, slot) in acc.iter_mut().enumerate() {
        let cpus = topo.cpus_of_node(NodeId(node));
        let idle = cpus.iter().filter(|c| is_idle(c.0)).count();
        *slot += idle as f64 / cpus.len() as f64;
    }
}

/// Averages per-node accumulators over the sampled rounds.
fn finish_node_idle(acc: Vec<f64>, sampled_rounds: u64) -> Vec<f64> {
    if sampled_rounds == 0 {
        acc.into_iter().map(|_| 0.0).collect()
    } else {
        acc.into_iter().map(|v| v / sampled_rounds as f64).collect()
    }
}

/// Niceness of the `i`-th spawned task under a spec (uniform `nice 0`
/// unless the spec asks for mixed importance).
fn nice_of(spec: &ExperimentSpec, index: u64) -> Nice {
    if spec.mixed_nice {
        Nice::new(MIXED_NICE[(index as usize) % MIXED_NICE.len()])
    } else {
        Nice::NORMAL
    }
}

/// Pure-model backend: concurrent balancing rounds on
/// [`sched_core::SystemState`], no time, no threads — the altitude the
/// proofs live at.
pub struct ModelBackend;

impl ModelBackend {
    /// The bursty on/off driver: each epoch one core's tasks sleep, a
    /// single balancing round runs against the blipped state, and the
    /// sleepers return.  Counts the churn those blips induce.
    fn run_burst(
        &self,
        spec: &ExperimentSpec,
        burst: BurstSpec,
        mut system: SystemState,
        topo: &Arc<MachineTopology>,
    ) -> ExperimentRecord {
        let balancer = Balancer::new(spec.policy.build(topo));
        let tracker = Arc::clone(&balancer.policy().tracker);
        let executor = ConcurrentRound::new(&balancer);
        let mut record = record_base(spec, "model");
        let nr_cores = system.nr_cores();
        let mut node_idle = vec![0.0f64; topo.nr_nodes()];
        let mut violating_core_rounds = 0.0f64;

        // Warm up: let decayed trackers converge to the steady loads.
        let mut now = burst.warmup_ns;
        system.tick(now, tracker.as_ref());

        let start = Instant::now();
        for epoch in 0..burst.epochs {
            // One core's tasks go to sleep: stash them away.
            let sleeper = CoreId(epoch % nr_cores);
            let parked_current = system.core_mut(sleeper).current.take();
            let parked_ready = std::mem::take(&mut system.core_mut(sleeper).ready);

            now += burst.epoch_ns;
            system.tick(now, tracker.as_ref());
            let idle = system.idle_cores();
            violating_core_rounds += idle.len() as f64 / nr_cores as f64;
            sample_node_idle(&mut node_idle, topo, |c| idle.contains(&CoreId(c)));

            let report = executor.execute(&mut system, &RoundSchedule::AllSelectThenSteal);
            record.migrations += report.nr_stolen() as u64;
            record.failures += report.nr_failures() as u64;
            for attempt in report.successes() {
                let victim = attempt.outcome.victim().expect("successes have victims");
                record.locality.record(
                    topo.steal_level(attempt.thief, victim),
                    attempt.outcome.nr_stolen() as u64,
                );
            }

            // The sleepers wake on their own core.
            if let Some(task) = parked_current {
                system.core_mut(sleeper).enqueue(task);
            }
            for task in parked_ready {
                system.core_mut(sleeper).enqueue(task);
            }
        }
        let wall = start.elapsed();

        record.wall_ms = wall.as_secs_f64() * 1e3;
        record.throughput = if wall.as_secs_f64() > 0.0 {
            record.migrations as f64 / wall.as_secs_f64()
        } else {
            0.0
        };
        record.violating_idle = violating_core_rounds / burst.epochs.max(1) as f64;
        record.per_node_violating_idle = finish_node_idle(node_idle, burst.epochs as u64);
        record
    }
}

impl Backend for ModelBackend {
    fn name(&self) -> &'static str {
        "model"
    }

    fn run(&self, spec: &ExperimentSpec) -> Option<ExperimentRecord> {
        // Overflow storms probe ring-overflow handling; the model has no
        // ring, so there is nothing for it to measure.  Batch sweeps probe
        // how many queue acquisitions a transfer costs; the model moves one
        // abstract thread per steal with no queue to acquire.
        if spec.storm.is_some() || spec.batch.is_some() {
            return None;
        }
        let topo = Arc::new(spec.topo.build());
        if topo.nr_cpus() != spec.loads.len() {
            return None;
        }
        let mut system = SystemState::with_topology(&topo);
        let mut next_task = 0u64;
        for (core, &n) in spec.loads.iter().enumerate() {
            for _ in 0..n {
                system
                    .core_mut(CoreId(core))
                    .enqueue(Task::with_nice(TaskId(next_task), nice_of(spec, next_task)));
                next_task += 1;
            }
        }

        if let Some(burst) = spec.burst {
            return Some(self.run_burst(spec, burst, system, &topo));
        }

        let balancer = Balancer::new(spec.policy.build(&topo));
        let tracker = Arc::clone(&balancer.policy().tracker);
        let hierarchical = spec
            .policy
            .is_hierarchical()
            .then(|| HierarchicalRound::new(&balancer, Arc::clone(&topo)));
        let executor = ConcurrentRound::new(&balancer);
        let mut record = record_base(spec, self.name());
        let nr_cores = spec.loads.len();
        let mut violating_core_rounds = 0.0f64;
        let mut node_idle = vec![0.0f64; topo.nr_nodes()];
        let mut sampled_rounds = 0u64;

        // Folds one round's attempts into the counters, attributing every
        // successful steal to its distance class.
        let absorb = |record: &mut ExperimentRecord, report: &RoundReport| {
            record.migrations += report.nr_stolen() as u64;
            record.failures += report.nr_failures() as u64;
            for attempt in report.successes() {
                let victim = attempt.outcome.victim().expect("successes have victims");
                record.locality.record(
                    topo.steal_level(attempt.thief, victim),
                    attempt.outcome.nr_stolen() as u64,
                );
            }
        };

        let start = Instant::now();
        for round in 0..=spec.budget_rounds {
            // One balancing period elapses per round; decayed criteria fold
            // it into every core's tracked load before selecting victims.
            system.tick((round as u64 + 1) * ROUND_NS, tracker.as_ref());
            if system.is_work_conserving() {
                record.convergence_rounds = Some(round);
                break;
            }
            if round == spec.budget_rounds {
                break;
            }
            violating_core_rounds += system.idle_cores().len() as f64 / nr_cores as f64;
            let idle = system.idle_cores();
            sample_node_idle(&mut node_idle, &topo, |c| idle.contains(&CoreId(c)));
            sampled_rounds += 1;
            match &hierarchical {
                Some(hier) => {
                    let report = hier.execute(&mut system, &RoundSchedule::AllSelectThenSteal);
                    for pass in &report.passes {
                        absorb(&mut record, &pass.report);
                    }
                }
                None => {
                    let report = executor.execute(&mut system, &RoundSchedule::AllSelectThenSteal);
                    absorb(&mut record, &report);
                }
            }
        }
        let wall = start.elapsed();

        record.wall_ms = wall.as_secs_f64() * 1e3;
        record.throughput = if wall.as_secs_f64() > 0.0 {
            record.migrations as f64 / wall.as_secs_f64()
        } else {
            0.0
        };
        // Average fraction of cores sitting idle per pre-convergence round;
        // every idle core in a non-work-conserving state is a violation by
        // definition.
        record.violating_idle =
            if sampled_rounds == 0 { 0.0 } else { violating_core_rounds / sampled_rounds as f64 };
        record.per_node_violating_idle = finish_node_idle(node_idle, sampled_rounds);
        Some(record)
    }
}

/// Discrete-event simulator backend: the spec's workload (or its load
/// vector replayed as pinned tasks) on [`sched_sim::Engine`] with the
/// optimistic scheduler driven by the spec's policy.
pub struct SimBackend;

impl Backend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn run(&self, spec: &ExperimentSpec) -> Option<ExperimentRecord> {
        use sched_sim::{
            Engine, HierarchicalScheduler, OptimisticScheduler, SimConfig, SimScheduler,
        };

        // Like the model, the simulator has no fixed-capacity ring and
        // cannot execute an overflow storm, and no per-steal queue
        // acquisition for a batch sweep to amortise.
        if spec.storm.is_some() || spec.batch.is_some() {
            return None;
        }
        let topo = Arc::new(spec.topo.build());
        if topo.nr_cpus() != spec.loads.len() {
            return None;
        }
        let workload = spec.sim_workload(topo.nr_cpus());
        let scheduler: Box<dyn SimScheduler> = if spec.policy.is_hierarchical() {
            Box::new(HierarchicalScheduler::new(spec.policy.build(&topo), Arc::clone(&topo)))
        } else {
            Box::new(OptimisticScheduler::with_topology(
                spec.policy.build(&topo),
                Arc::clone(&topo),
            ))
        };

        let start = Instant::now();
        let result = Engine::new(SimConfig::default(), Some(&topo), &workload, scheduler).run();
        let wall = start.elapsed();

        let mut record = record_base(spec, self.name());
        record.threads = workload.nr_threads() as u64;
        record.throughput = result.throughput_ops_per_sec();
        record.throughput_unit = "ops/s";
        record.violating_idle = result.violating_idle_fraction();
        record.migrations = result.balance.migrations;
        record.failures = result.balance.failures;
        record.locality = result.balance.locality();
        record.p99_sched_latency_us = Some(result.latency.quantile(0.99) as f64 / 1e3);
        record.per_node_violating_idle = (0..topo.nr_nodes())
            .map(|n| {
                let cpus: Vec<usize> = topo.cpus_of_node(NodeId(n)).iter().map(|c| c.0).collect();
                result.idle.violation_fraction_of(&cpus)
            })
            .collect();
        record.wall_ms = wall.as_secs_f64() * 1e3;
        Some(record)
    }
}

/// Real-thread backends: the spec's load vector on
/// [`sched_rq::MultiQueue`], one OS thread per core per round, lock-less
/// selection and a genuinely contended stealing phase.  Generic over the
/// [`sched_rq::RqBackend`] runqueue discipline, so the mutex and the
/// lock-free deque machines run the *identical* driver:
///
/// * [`RqBackend`] — record backend `"rq"`, mutex runqueues (double-lock
///   stealing); the keys every historical baseline gates on.
/// * [`RqDequeBackend`] — record backend `"rq-deque"`, Chase–Lev
///   runqueues (CAS stealing).
pub struct RqBackend;

/// The lock-free flavour of the real-thread backend (see [`RqBackend`]).
pub struct RqDequeBackend;

/// The threaded twin of [`ModelBackend::run_burst`]: per epoch, drain
/// one core (its tasks "sleep"), run one genuinely concurrent round
/// against the blipped state, then respawn the sleepers on their core.
fn run_rq_burst<B: sched_rq::RqBackend>(
    backend: &'static str,
    spec: &ExperimentSpec,
    burst: BurstSpec,
    mq: MultiQueue<B>,
    topo: &Arc<MachineTopology>,
) -> ExperimentRecord {
    let policy = spec.policy.build(topo);
    let mut record = record_base(spec, backend);
    record.rq_backend = Some(B::backend_name());
    let nr_cores = spec.loads.len();
    let mut node_idle = vec![0.0f64; topo.nr_nodes()];
    let mut violating_core_rounds = 0.0f64;

    let mut now = burst.warmup_ns;
    mq.tick(now);

    let start = Instant::now();
    for epoch in 0..burst.epochs {
        let sleeper = CoreId(epoch % nr_cores);
        let mut parked = Vec::new();
        while let Some(task) = mq.core(sleeper).complete_current() {
            parked.push(task.nice);
        }

        now += burst.epoch_ns;
        mq.tick(now);
        let snapshots = mq.snapshots();
        let idle = snapshots.iter().filter(|s| s.nr_threads == 0).count();
        violating_core_rounds += idle as f64 / nr_cores as f64;
        sample_node_idle(&mut node_idle, topo, |c| snapshots[c].nr_threads == 0);

        let stats = mq.concurrent_round(&policy);
        record.migrations += stats.migrations();
        record.failures += stats.failures();
        record.locality.merge(&StealLocality::from_counts(stats.level_migration_counts()));

        for nice in parked {
            mq.spawn_on_with_nice(sleeper, nice);
        }
    }
    let wall = start.elapsed();

    record.wall_ms = wall.as_secs_f64() * 1e3;
    record.throughput =
        if wall.as_secs_f64() > 0.0 { record.migrations as f64 / wall.as_secs_f64() } else { 0.0 };
    record.violating_idle = violating_core_rounds / burst.epochs.max(1) as f64;
    record.per_node_violating_idle = finish_node_idle(node_idle, burst.epochs as u64);
    record
}

/// The overflow-storm driver (see [`StormSpec`]): per epoch, a fan-out
/// burst lands on core 0, `rounds_per_epoch` genuinely concurrent rounds
/// run against it with **no tick** in between, and the machine drains.
/// After every round the settled state is sampled: a core still idle while
/// an overloaded core holds waiting work is the violation this experiment
/// exists to measure — on a conserving overflow discipline the burst is
/// fully reachable, so the post-round idle count is ~0; on one that hides
/// overflow the stranded cores persist for the rest of the epoch.
fn run_rq_storm<B: sched_rq::RqBackend>(
    backend: &'static str,
    spec: &ExperimentSpec,
    storm: StormSpec,
    mq: MultiQueue<B>,
    topo: &Arc<MachineTopology>,
) -> ExperimentRecord {
    let policy = spec.policy.build(topo);
    let mut record = record_base(spec, backend);
    record.rq_backend = Some(B::backend_name());
    let batch = spec.batch.map(BatchK::steal_batch).unwrap_or_default();
    let mut successes = 0u64;
    let nr_cores = spec.loads.len();
    let mut exposure = sched_metrics::OverflowExposure::new(nr_cores);
    let mut node_idle = vec![0.0f64; topo.nr_nodes()];
    let mut now = 0u64;

    let start = Instant::now();
    for _ in 0..storm.epochs {
        // The burst: far past the tiny flavours' ring capacity, so most of
        // it lands wherever the backend parks overflow.
        for _ in 0..storm.fanout {
            mq.spawn_on(CoreId(0));
        }
        for _ in 0..storm.rounds_per_epoch {
            let stats = mq.concurrent_round_batched(&policy, batch);
            record.migrations += stats.migrations();
            record.failures += stats.failures();
            successes += stats.successes();
            record.locality.merge(&StealLocality::from_counts(stats.level_migration_counts()));
            // Sample the *settled* state: idle-after-a-full-round while
            // work waits is exactly the conservation violation.
            let snapshots = mq.snapshots();
            let idle = snapshots.iter().filter(|s| s.nr_threads == 0).count();
            let work_waiting = snapshots.iter().any(|s| s.nr_threads >= 2);
            exposure.record_round(idle, work_waiting);
            if work_waiting {
                sample_node_idle(&mut node_idle, topo, |c| snapshots[c].nr_threads == 0);
            }
        }
        // Epoch boundary: the tick fires (this is where the legacy spill
        // finally re-exposes stranded work) and the machine drains for the
        // next burst.
        now += ROUND_NS;
        mq.tick(now);
        for core in 0..nr_cores {
            while mq.core(CoreId(core)).complete_current().is_some() {}
        }
    }
    let wall = start.elapsed();

    record.wall_ms = wall.as_secs_f64() * 1e3;
    record.throughput =
        if wall.as_secs_f64() > 0.0 { record.migrations as f64 / wall.as_secs_f64() } else { 0.0 };
    record.violating_idle = exposure.violating_fraction();
    record.per_node_violating_idle = finish_node_idle(node_idle, exposure.sampled_rounds());
    if spec.batch.is_some() {
        record.tasks_per_acquisition =
            Some(if successes > 0 { record.migrations as f64 / successes as f64 } else { 0.0 });
    }
    record
}

/// Runs one spec on a machine of `B`-discipline runqueues, labelling the
/// record with `backend`.
fn run_rq_spec<B: sched_rq::RqBackend>(
    backend: &'static str,
    spec: &ExperimentSpec,
) -> Option<ExperimentRecord> {
    let topo = Arc::new(spec.topo.build());
    if topo.nr_cpus() != spec.loads.len() {
        return None;
    }
    let policy = spec.policy.build(&topo);
    let mq: MultiQueue<B> =
        MultiQueue::with_topology_and_tracker(&topo, Arc::clone(&policy.tracker));
    let mut next_task = 0u64;
    for (core, &n) in spec.loads.iter().enumerate() {
        for _ in 0..n {
            mq.spawn_on_with_nice(CoreId(core), nice_of(spec, next_task));
            next_task += 1;
        }
    }

    if let Some(storm) = spec.storm {
        return Some(run_rq_storm(backend, spec, storm, mq, &topo));
    }
    if let Some(burst) = spec.burst {
        return Some(run_rq_burst(backend, spec, burst, mq, &topo));
    }

    let mut record = record_base(spec, backend);
    record.rq_backend = Some(B::backend_name());
    let batch = spec.batch.map(BatchK::steal_batch).unwrap_or_default();
    let mut successes = 0u64;
    let nr_cores = spec.loads.len();
    let mut violating_core_rounds = 0.0f64;
    let mut node_idle = vec![0.0f64; topo.nr_nodes()];
    let mut sampled_rounds = 0u64;

    let start = Instant::now();
    for round in 0..=spec.budget_rounds {
        // One balancing period elapses per round (decayed criteria fold
        // it under each runqueue's lock).
        mq.tick((round as u64 + 1) * ROUND_NS);
        if mq.is_work_conserving() {
            record.convergence_rounds = Some(round);
            break;
        }
        if round == spec.budget_rounds {
            break;
        }
        let snapshots = mq.snapshots();
        let idle = snapshots.iter().filter(|s| s.nr_threads == 0).count();
        violating_core_rounds += idle as f64 / nr_cores as f64;
        sample_node_idle(&mut node_idle, &topo, |c| snapshots[c].nr_threads == 0);
        sampled_rounds += 1;
        let stats = if spec.policy.is_hierarchical() {
            mq.hierarchical_round(&policy)
        } else {
            mq.concurrent_round_batched(&policy, batch)
        };
        record.migrations += stats.migrations();
        record.failures += stats.failures();
        successes += stats.successes();
        record.locality.merge(&StealLocality::from_counts(stats.level_migration_counts()));
    }
    let wall = start.elapsed();

    record.wall_ms = wall.as_secs_f64() * 1e3;
    record.throughput =
        if wall.as_secs_f64() > 0.0 { record.migrations as f64 / wall.as_secs_f64() } else { 0.0 };
    record.violating_idle =
        if sampled_rounds == 0 { 0.0 } else { violating_core_rounds / sampled_rounds as f64 };
    record.per_node_violating_idle = finish_node_idle(node_idle, sampled_rounds);
    if spec.batch.is_some() {
        record.tasks_per_acquisition =
            Some(if successes > 0 { record.migrations as f64 / successes as f64 } else { 0.0 });
    }
    Some(record)
}

impl Backend for RqBackend {
    fn name(&self) -> &'static str {
        "rq"
    }

    fn run(&self, spec: &ExperimentSpec) -> Option<ExperimentRecord> {
        run_rq_spec::<sched_rq::PerCoreRq<sched_rq::FifoQueue>>(self.name(), spec)
    }
}

impl Backend for RqDequeBackend {
    fn name(&self) -> &'static str {
        "rq-deque"
    }

    fn run(&self, spec: &ExperimentSpec) -> Option<ExperimentRecord> {
        run_rq_spec::<sched_rq::DequeRq>(self.name(), spec)
    }
}

/// Overflow-storm flavour of the lock-free backend: tiny rings
/// ([`sched_rq::TINY_RING_CAPACITY`]) with the shared-injector overflow
/// discipline (record backend `"rq-deque-tiny"`).  Only executes specs
/// carrying a [`StormSpec`] — on every other scenario its behaviour is the
/// regular `rq-deque` machine with a smaller ring, which would only
/// duplicate rows.
pub struct RqTinyDequeBackend;

/// The storm *baseline*: tiny rings with the legacy owner-private spill
/// (record backend `"rq-deque-spill"`).  This is the work-conservation
/// hole kept measurable; E22's headline is the gap between this row's
/// idle-while-spilled and `rq-deque-tiny`'s ~0.
pub struct RqSpillDequeBackend;

impl Backend for RqTinyDequeBackend {
    fn name(&self) -> &'static str {
        "rq-deque-tiny"
    }

    fn run(&self, spec: &ExperimentSpec) -> Option<ExperimentRecord> {
        spec.storm?;
        run_rq_spec::<sched_rq::TinyDequeRq>(self.name(), spec)
    }
}

impl Backend for RqSpillDequeBackend {
    fn name(&self) -> &'static str {
        "rq-deque-spill"
    }

    fn run(&self, spec: &ExperimentSpec) -> Option<ExperimentRecord> {
        spec.storm?;
        run_rq_spec::<sched_rq::TinySpillDequeRq>(self.name(), spec)
    }
}

/// Executes specs across a set of backends.
pub struct ExperimentRunner {
    backends: Vec<Box<dyn Backend>>,
}

impl ExperimentRunner {
    /// A runner over the given backends.
    pub fn new(backends: Vec<Box<dyn Backend>>) -> Self {
        ExperimentRunner { backends }
    }

    /// A runner over every backend: model, sim, the real-thread machine
    /// under both runqueue disciplines (mutex `rq`, lock-free `rq-deque`),
    /// and the storm-only tiny-ring flavours (`rq-deque-tiny`,
    /// `rq-deque-spill`), which execute nothing except overflow-storm
    /// specs — record counts for every other experiment are unchanged.
    pub fn with_all_backends() -> Self {
        ExperimentRunner::new(vec![
            Box::new(ModelBackend),
            Box::new(SimBackend),
            Box::new(RqBackend),
            Box::new(RqDequeBackend),
            Box::new(RqTinyDequeBackend),
            Box::new(RqSpillDequeBackend),
        ])
    }

    /// The backends, in execution order.
    pub fn backends(&self) -> &[Box<dyn Backend>] {
        &self.backends
    }

    /// Runs one spec on every backend that supports it.
    pub fn run(&self, spec: &ExperimentSpec) -> Vec<ExperimentRecord> {
        self.backends.iter().filter_map(|b| b.run(spec)).collect()
    }

    /// Runs every spec on every backend.
    pub fn run_catalog(&self, specs: &[ExperimentSpec]) -> Vec<ExperimentRecord> {
        specs.iter().flat_map(|spec| self.run(spec)).collect()
    }
}

/// The per-experiment scenario catalog: e1–e13, each declared exactly once.
pub fn catalog() -> Vec<ExperimentSpec> {
    let eight_node = TopologyBuilder::eight_node_numa();
    // One hot core per NUMA node holds that node's whole share of the work.
    let mut numa_loads = vec![0usize; eight_node.nr_cpus()];
    let per_node = 2 * eight_node.nr_cpus() / eight_node.nr_nodes();
    for node in 0..eight_node.nr_nodes() {
        numa_loads[eight_node.cpus_of_node(NodeId(node))[0].0] = per_node;
    }

    vec![
        ExperimentSpec {
            id: ExperimentId::E1,
            scenario: "choice-irrelevance: four hot cores of sixteen",
            loads: vec![12, 0, 0, 0, 4, 0, 0, 0, 2, 0, 0, 0, 6, 0, 0, 0],
            topo: TopoSpec::Flat(16),
            policy: PolicySpec::Listing1,
            workload: None,
            budget_rounds: 256,
            burst: None,
            storm: None,
            mixed_nice: false,
            batch: None,
        },
        ExperimentSpec {
            id: ExperimentId::E2,
            scenario: "listing1: all threads on core 0 of 8",
            loads: vec![16, 0, 0, 0, 0, 0, 0, 0],
            topo: TopoSpec::Flat(8),
            policy: PolicySpec::Listing1,
            workload: None,
            budget_rounds: 128,
            burst: None,
            storm: None,
            mixed_nice: false,
            batch: None,
        },
        ExperimentSpec {
            id: ExperimentId::E3,
            scenario: "lemma1 scope: three cores, loads [4,1,0]",
            loads: vec![4, 1, 0],
            topo: TopoSpec::Flat(3),
            policy: PolicySpec::Listing1,
            workload: None,
            budget_rounds: 64,
            burst: None,
            storm: None,
            mixed_nice: false,
            batch: None,
        },
        ExperimentSpec {
            id: ExperimentId::E4,
            scenario: "sequential WC: step imbalance on four cores",
            loads: StaticImbalance::new(4, 8, ImbalancePattern::Step).loads(),
            topo: TopoSpec::Flat(4),
            policy: PolicySpec::Weighted,
            workload: None,
            budget_rounds: 64,
            burst: None,
            storm: None,
            mixed_nice: false,
            batch: None,
        },
        ExperimentSpec {
            id: ExperimentId::E5,
            scenario: "greedy filter on the ping-pong-prone shape",
            loads: vec![4, 1, 0, 0],
            topo: TopoSpec::Flat(4),
            policy: PolicySpec::Greedy,
            workload: None,
            budget_rounds: 64,
            burst: None,
            storm: None,
            mixed_nice: false,
            batch: None,
        },
        ExperimentSpec {
            id: ExperimentId::E6,
            scenario: "contention: one hot core, seven thieves",
            loads: vec![8, 0, 0, 0, 0, 0, 0, 0],
            topo: TopoSpec::Flat(8),
            policy: PolicySpec::Listing1,
            workload: None,
            budget_rounds: 128,
            burst: None,
            storm: None,
            mixed_nice: false,
            batch: None,
        },
        ExperimentSpec {
            id: ExperimentId::E7,
            scenario: "potential drain: step imbalance, 8 cores 16 threads",
            loads: StaticImbalance::new(8, 16, ImbalancePattern::Step).loads(),
            topo: TopoSpec::Flat(8),
            policy: PolicySpec::Listing1,
            workload: None,
            budget_rounds: 128,
            burst: None,
            storm: None,
            mixed_nice: false,
            batch: None,
        },
        ExperimentSpec {
            id: ExperimentId::E8,
            scenario: "convergence at scale: 64 cores, single hot",
            loads: StaticImbalance::new(64, 128, ImbalancePattern::SingleHot).loads(),
            topo: TopoSpec::Flat(64),
            policy: PolicySpec::StealHalf,
            workload: None,
            budget_rounds: 1024,
            burst: None,
            storm: None,
            mixed_nice: false,
            batch: None,
        },
        ExperimentSpec {
            id: ExperimentId::E9,
            scenario: "scientific fork-join on the dual-socket server",
            loads: {
                let mut loads = vec![0usize; 16];
                loads[0] = 16;
                loads
            },
            topo: TopoSpec::DualSocket,
            policy: PolicySpec::Listing1,
            workload: Some(WorkloadKind::Scientific),
            budget_rounds: 256,
            burst: None,
            storm: None,
            mixed_nice: false,
            batch: None,
        },
        ExperimentSpec {
            id: ExperimentId::E10,
            scenario: "OLTP on the dual-socket server",
            loads: {
                let mut loads = vec![0usize; 16];
                for slot in loads.iter_mut().take(4) {
                    *slot = 8;
                }
                loads
            },
            topo: TopoSpec::DualSocket,
            policy: PolicySpec::Listing1,
            workload: Some(WorkloadKind::Oltp),
            budget_rounds: 256,
            burst: None,
            storm: None,
            mixed_nice: false,
            batch: None,
        },
        ExperimentSpec {
            id: ExperimentId::E11,
            scenario: "lock-less overhead: every fourth core hot, 64 cores",
            loads: (0..64).map(|i| if i % 4 == 0 { 6 } else { 0 }).collect(),
            topo: TopoSpec::Flat(64),
            policy: PolicySpec::Listing1,
            workload: None,
            budget_rounds: 512,
            burst: None,
            storm: None,
            mixed_nice: false,
            batch: None,
        },
        ExperimentSpec {
            id: ExperimentId::E12,
            scenario: "hierarchical: one hot core per NUMA node",
            loads: numa_loads,
            topo: TopoSpec::EightNode,
            policy: PolicySpec::NumaAware,
            workload: None,
            budget_rounds: 512,
            burst: None,
            storm: None,
            mixed_nice: false,
            batch: None,
        },
        ExperimentSpec {
            id: ExperimentId::E13,
            scenario: "DSL-compiled listing1: all threads on core 0 of 8",
            loads: vec![16, 0, 0, 0, 0, 0, 0, 0],
            topo: TopoSpec::Flat(8),
            policy: PolicySpec::DslListing1,
            workload: None,
            budget_rounds: 128,
            burst: None,
            storm: None,
            mixed_nice: false,
            batch: None,
        },
        ExperimentSpec {
            id: ExperimentId::E14,
            scenario: "NUMA imbalance: node 0 saturated, node 1 idle",
            loads: {
                // Every core of node 0 (cpus 0..8 of the dual-socket box)
                // holds 4 threads; node 1 is completely idle, so work *must*
                // cross the socket — but only as much as needed.
                let mut loads = vec![0usize; 16];
                for slot in loads.iter_mut().take(8) {
                    *slot = 4;
                }
                loads
            },
            topo: TopoSpec::DualSocket,
            policy: PolicySpec::TopoAware,
            workload: None,
            budget_rounds: 256,
            burst: None,
            storm: None,
            mixed_nice: false,
            batch: None,
        },
        ExperimentSpec {
            id: ExperimentId::E15,
            scenario: "cross-node ping-pong bait: hot cores on distant nodes",
            loads: {
                // One saturated core on node 0 and one on the ring-distant
                // node 4: a distance-blind chooser bounces threads across
                // the interconnect; the distance-ordered search keeps the
                // drain node-local.
                let eight = TopologyBuilder::eight_node_numa();
                let mut loads = vec![0usize; eight.nr_cpus()];
                let per_node = eight.nr_cpus() / eight.nr_nodes();
                loads[eight.cpus_of_node(NodeId(0))[0].0] = 2 * per_node;
                loads[eight.cpus_of_node(NodeId(4))[0].0] = 2 * per_node;
                loads
            },
            topo: TopoSpec::EightNode,
            policy: PolicySpec::TopoAware,
            workload: None,
            budget_rounds: 512,
            burst: None,
            storm: None,
            mixed_nice: false,
            batch: None,
        },
        ExperimentSpec {
            id: ExperimentId::E16,
            scenario: "hierarchical convergence: one hot core per NUMA node",
            loads: {
                let eight = TopologyBuilder::eight_node_numa();
                let mut loads = vec![0usize; eight.nr_cpus()];
                let per_node = 2 * eight.nr_cpus() / eight.nr_nodes();
                for node in 0..eight.nr_nodes() {
                    loads[eight.cpus_of_node(NodeId(node))[0].0] = per_node;
                }
                loads
            },
            topo: TopoSpec::EightNode,
            policy: PolicySpec::Hierarchical,
            workload: None,
            budget_rounds: 512,
            burst: None,
            storm: None,
            mixed_nice: false,
            batch: None,
        },
        // E17 is a *comparison*: the same bursty on/off scenario once under
        // instantaneous thread counts and once under the PELT tracker, so
        // the regression gate pins both sides of the churn gap.
        ExperimentSpec {
            id: ExperimentId::E17,
            scenario: "bursty on/off: instantaneous balancing",
            loads: vec![2; 8],
            topo: TopoSpec::Flat(8),
            policy: PolicySpec::Listing1,
            workload: None,
            budget_rounds: 64,
            burst: Some(BurstSpec {
                epochs: 32,
                epoch_ns: 1_000_000,
                warmup_ns: 32 * PELT_HALF_LIFE_NS,
            }),
            storm: None,
            mixed_nice: false,
            batch: None,
        },
        ExperimentSpec {
            id: ExperimentId::E17,
            scenario: "bursty on/off: PELT balancing",
            loads: vec![2; 8],
            topo: TopoSpec::Flat(8),
            policy: PolicySpec::Pelt,
            workload: None,
            budget_rounds: 64,
            burst: Some(BurstSpec {
                epochs: 32,
                epoch_ns: 1_000_000,
                warmup_ns: 32 * PELT_HALF_LIFE_NS,
            }),
            storm: None,
            mixed_nice: false,
            batch: None,
        },
        ExperimentSpec {
            id: ExperimentId::E18,
            scenario: "mixed niceness: PELT-decayed weighted balancing",
            loads: StaticImbalance::new(8, 24, ImbalancePattern::SingleHot).loads(),
            topo: TopoSpec::Flat(8),
            policy: PolicySpec::PeltWeighted,
            workload: None,
            budget_rounds: 512,
            burst: None,
            storm: None,
            mixed_nice: true,
            batch: None,
        },
        ExperimentSpec {
            id: ExperimentId::E19,
            scenario: "tracker overhead: every fourth core hot, 64 cores",
            loads: (0..64).map(|i| if i % 4 == 0 { 6 } else { 0 }).collect(),
            topo: TopoSpec::Flat(64),
            policy: PolicySpec::Pelt,
            workload: None,
            budget_rounds: 512,
            burst: None,
            storm: None,
            mixed_nice: false,
            batch: None,
        },
        // E20: the steal-heavy fan-out — one producer core holds all the
        // work, fifteen thieves hammer it.  The shape maximises contention
        // on a single victim queue, which is exactly where the lock-free
        // backend's owner path earns its keep (the rq vs rq-deque record
        // pair is the headline comparison).
        ExperimentSpec {
            id: ExperimentId::E20,
            scenario: "steal-heavy fan-out: one producer core, fifteen thieves",
            loads: {
                let mut loads = vec![0usize; 16];
                loads[0] = 64;
                loads
            },
            topo: TopoSpec::Flat(16),
            policy: PolicySpec::Listing1,
            workload: None,
            budget_rounds: 256,
            burst: None,
            storm: None,
            mixed_nice: false,
            batch: None,
        },
    ]
    .into_iter()
    .chain(
        // E21: the PELT half-life sensitivity sweep — E17's bursty on/off
        // shape with the blips stretched to 4 ms, re-run per half-life.
        // The blip length sits between the swept half-lives: a 1 ms
        // half-life forgets a sleeping core within one blip and churns,
        // while 4 ms and up retain enough history to hold still — the
        // discrimination that justifies the 8 ms default (E21b's warm-up
        // lag covers the other side of the trade-off).
        [1u32, 4, 16, 64].into_iter().map(|half_life_ms| ExperimentSpec {
            id: ExperimentId::E21,
            scenario: match half_life_ms {
                1 => "half-life sweep: pelt(1ms) vs 4ms bursts",
                4 => "half-life sweep: pelt(4ms) vs 4ms bursts",
                16 => "half-life sweep: pelt(16ms) vs 4ms bursts",
                64 => "half-life sweep: pelt(64ms) vs 4ms bursts",
                _ => unreachable!(),
            },
            loads: vec![2; 8],
            topo: TopoSpec::Flat(8),
            policy: PolicySpec::PeltHalfLife(half_life_ms),
            workload: None,
            budget_rounds: 64,
            burst: Some(BurstSpec { epochs: 32, epoch_ns: 4_000_000, warmup_ns: 32 * 64_000_000 }),
            storm: None,
            mixed_nice: false,
            batch: None,
        }),
    )
    .chain(std::iter::once(
        // E22: the overflow storm — a fan-out burst three times the tiny
        // flavours' ring capacity lands on one producer core, fifteen
        // thieves balance against it with no tick in between.  Work
        // conservation demands every overflowed task stay stealable: the
        // injector-backed tiny flavour pins idle-while-spilled at ~0, the
        // legacy private-spill flavour strands ~7 of 16 cores for the rest
        // of each epoch, and the mutex/big-ring rows are the no-overflow
        // controls.  One resident task keeps core 0 busy so every burst
        // task has to queue.
        ExperimentSpec {
            id: ExperimentId::E22,
            scenario: "overflow storm: fan-out bursts on tiny rings",
            loads: {
                let mut loads = vec![0usize; 16];
                loads[0] = 1;
                loads
            },
            topo: TopoSpec::Flat(16),
            policy: PolicySpec::Listing1,
            workload: None,
            budget_rounds: 0,
            burst: None,
            storm: Some(StormSpec { epochs: 16, fanout: 24, rounds_per_epoch: 2 }),
            mixed_nice: false,
            batch: None,
        },
    ))
    // E23: the steal-batch sweep — how many threads one queue acquisition
    // should claim, k ∈ {1, 2, 4, 8, half-imbalance}, on the two shapes
    // where acquisitions dominate: E20's steal-heavy fan-out (one producer,
    // fifteen thieves hammering a single hot ring) and E22's overflow storm
    // (most of the burst parked in the injector, where one lock round-trip
    // can serve the whole decision).  `Fixed(1)` is the Listing 1 baseline;
    // every other point must beat its tasks-per-acquisition.
    .chain(BatchK::SWEEP.into_iter().map(|k| ExperimentSpec {
        id: ExperimentId::E23,
        scenario: match k {
            BatchK::Fixed(1) => "batch sweep k=1: steal-heavy fan-out",
            BatchK::Fixed(2) => "batch sweep k=2: steal-heavy fan-out",
            BatchK::Fixed(4) => "batch sweep k=4: steal-heavy fan-out",
            BatchK::Fixed(8) => "batch sweep k=8: steal-heavy fan-out",
            _ => "batch sweep k=half: steal-heavy fan-out",
        },
        loads: {
            let mut loads = vec![0usize; 16];
            loads[0] = 64;
            loads
        },
        topo: TopoSpec::Flat(16),
        policy: PolicySpec::Listing1,
        workload: None,
        budget_rounds: 256,
        burst: None,
        storm: None,
        mixed_nice: false,
        batch: Some(k),
    }))
    .chain(BatchK::SWEEP.into_iter().map(|k| ExperimentSpec {
        id: ExperimentId::E23,
        scenario: match k {
            BatchK::Fixed(1) => "batch sweep k=1: overflow storm",
            BatchK::Fixed(2) => "batch sweep k=2: overflow storm",
            BatchK::Fixed(4) => "batch sweep k=4: overflow storm",
            BatchK::Fixed(8) => "batch sweep k=8: overflow storm",
            _ => "batch sweep k=half: overflow storm",
        },
        loads: {
            let mut loads = vec![0usize; 16];
            loads[0] = 1;
            loads
        },
        topo: TopoSpec::Flat(16),
        policy: PolicySpec::Listing1,
        workload: None,
        budget_rounds: 0,
        burst: None,
        storm: Some(StormSpec { epochs: 16, fanout: 24, rounds_per_epoch: 2 }),
        mixed_nice: false,
        batch: Some(k),
    }))
    .collect()
}

/// Serializes records (plus a small header) to the `BENCH_results.json`
/// document.
pub fn records_to_json(records: &[ExperimentRecord]) -> String {
    object(vec![
        (
            "paper",
            JsonValue::Str("Towards Proving Optimistic Multicore Schedulers (HotOS 2017)".into()),
        ),
        ("harness", JsonValue::Str("sched-bench experiments --json".into())),
        // The version's meaning is documented on `sched_json::SCHEMA_VERSION`
        // (v5: steal_batch_k + tasks_per_acquisition).
        ("schema_version", JsonValue::Int(sched_json::SCHEMA_VERSION)),
        ("records", JsonValue::Array(records.iter().map(ExperimentRecord::to_json).collect())),
    ])
    .render_pretty()
}

/// Renders records as one table for terminal display.
pub fn records_table(records: &[ExperimentRecord]) -> Table {
    let mut table = Table::new(
        "Unified runner: every experiment on every backend",
        &[
            "experiment",
            "scenario",
            "backend",
            "policy",
            "tracker",
            "cores",
            "threads",
            "throughput",
            "violating idle %",
            "rounds to WC",
            "migrations",
            "failures",
            "steals smt/llc/node/remote",
            "remote %",
            "wall (ms)",
        ],
    );
    for r in records {
        let levels = r.locality.counts();
        table.row(&[
            r.experiment.clone(),
            r.scenario.clone(),
            r.backend.into(),
            r.policy.into(),
            r.tracker.into(),
            r.cores.to_string(),
            r.threads.to_string(),
            format!("{:.0} {}", r.throughput, r.throughput_unit),
            format!("{:.1}%", r.violating_idle * 100.0),
            r.convergence_rounds.map(|r| r.to_string()).unwrap_or_else(|| "-".into()),
            r.migrations.to_string(),
            r.failures.to_string(),
            format!("{}/{}/{}/{}", levels[0], levels[1], levels[2], levels[3]),
            format!("{:.0}%", r.remote_steal_rate() * 100.0),
            format!("{:.2}", r.wall_ms),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(policy: PolicySpec) -> ExperimentSpec {
        ExperimentSpec {
            id: ExperimentId::E2,
            scenario: "test: single hot of four",
            loads: vec![8, 0, 0, 0],
            topo: TopoSpec::Flat(4),
            policy,
            workload: None,
            budget_rounds: 64,
            burst: None,
            storm: None,
            mixed_nice: false,
            batch: None,
        }
    }

    #[test]
    fn tracker_names_match_the_built_policies() {
        // `tracker_name` is a static copy of what `build(..)` produces (the
        // JSON records need &'static str); this pins the two together so a
        // half-life or format change cannot silently desynchronise them.
        let topo = Arc::new(TopoSpec::Flat(4).build());
        for spec in [
            PolicySpec::Listing1,
            PolicySpec::Greedy,
            PolicySpec::Weighted,
            PolicySpec::StealHalf,
            PolicySpec::NumaAware,
            PolicySpec::TopoAware,
            PolicySpec::Hierarchical,
            PolicySpec::DslListing1,
            PolicySpec::Pelt,
            PolicySpec::PeltWeighted,
            PolicySpec::PeltHalfLife(1),
            PolicySpec::PeltHalfLife(4),
            PolicySpec::PeltHalfLife(16),
            PolicySpec::PeltHalfLife(64),
        ] {
            assert_eq!(
                spec.tracker_name(),
                spec.build(&topo).tracker.name(),
                "{spec:?}: tracker_name drifted from the built tracker"
            );
        }
    }

    #[test]
    fn catalog_covers_every_experiment() {
        let specs = catalog();
        assert_eq!(specs.len(), 36);
        let ids: std::collections::BTreeSet<String> =
            specs.iter().map(|s| format!("{:?}", s.id)).collect();
        assert_eq!(ids.len(), ExperimentId::all().len(), "every experiment id appears");
        // E17 is a deliberate comparison pair, E21 a four-point sweep and
        // E23 a five-point batch sweep on two shapes; every other id
        // appears exactly once, and every spec is disambiguated by
        // scenario name.
        assert_eq!(specs.iter().filter(|s| s.id == ExperimentId::E17).count(), 2);
        assert_eq!(specs.iter().filter(|s| s.id == ExperimentId::E21).count(), 4);
        assert_eq!(specs.iter().filter(|s| s.id == ExperimentId::E23).count(), 10);
        for spec in specs.iter().filter(|s| s.id == ExperimentId::E23) {
            assert!(spec.batch.is_some(), "{}: batch specs carry their k", spec.scenario);
        }
        let keys: std::collections::BTreeSet<String> =
            specs.iter().map(|s| format!("{:?}|{}", s.id, s.scenario)).collect();
        assert_eq!(keys.len(), specs.len(), "scenario names keep gate keys unique");
        for spec in &specs {
            assert_eq!(
                spec.topo.build().nr_cpus(),
                spec.loads.len(),
                "{}: load vector must match the machine",
                spec.scenario
            );
            assert!(spec.nr_threads() > 0);
        }
    }

    #[test]
    fn all_backends_run_the_same_spec() {
        let spec = small_spec(PolicySpec::Listing1);
        let runner = ExperimentRunner::with_all_backends();
        let records = runner.run(&spec);
        assert_eq!(records.len(), 4);
        let backends: Vec<&str> = records.iter().map(|r| r.backend).collect();
        assert_eq!(backends, vec!["model", "sim", "rq", "rq-deque"]);
        // Schema v4: the rq records carry their runqueue discipline.
        let flavour = |backend: &str| {
            records.iter().find(|r| r.backend == backend).and_then(|r| r.rq_backend)
        };
        assert_eq!(flavour("rq"), Some("mutex"));
        assert_eq!(flavour("rq-deque"), Some("deque"));
        assert_eq!(flavour("model"), None);
        for r in &records {
            assert_eq!(r.experiment, "e2");
            assert_eq!(r.cores, 4);
            assert!(r.threads >= 8);
            assert!(r.migrations > 0, "{}: balancing must migrate work", r.backend);
        }
        // The model and rq backends must both converge, and — single hot
        // core, three idle thieves — need at least three migrations.
        for r in records.iter().filter(|r| r.backend != "sim") {
            assert!(r.convergence_rounds.is_some(), "{} did not converge", r.backend);
            assert!(r.migrations >= 3);
        }
    }

    #[test]
    fn batch_specs_run_on_the_rq_backends_only_and_measure_tasks_per_acquisition() {
        let mut spec = small_spec(PolicySpec::Listing1);
        spec.id = ExperimentId::E23;
        spec.loads = vec![16, 0, 0, 0];
        spec.batch = Some(BatchK::Fixed(1));
        let runner = ExperimentRunner::with_all_backends();
        let records = runner.run(&spec);
        let backends: Vec<&str> = records.iter().map(|r| r.backend).collect();
        assert_eq!(backends, vec!["rq", "rq-deque"], "model/sim cannot execute a batch sweep");
        for r in &records {
            assert_eq!(r.steal_batch_k, Some("1"));
            let tpa = r.tasks_per_acquisition.expect("batch records measure the amortisation");
            assert!(
                (tpa - 1.0).abs() < 1e-9,
                "{}: k=1 moves exactly one task per successful acquisition, got {tpa}",
                r.backend
            );
        }
        // Non-batch records keep the schema-v5 fields null.
        let plain = runner.run(&small_spec(PolicySpec::Listing1));
        for r in &plain {
            assert_eq!(r.steal_batch_k, None);
            assert_eq!(r.tasks_per_acquisition, None);
        }
    }

    #[test]
    fn dsl_policy_behaves_like_handwritten_listing1_on_the_model() {
        let runner = ExperimentRunner::new(vec![Box::new(ModelBackend)]);
        let handwritten = &runner.run(&small_spec(PolicySpec::Listing1))[0];
        let compiled = &runner.run(&small_spec(PolicySpec::DslListing1))[0];
        assert_eq!(handwritten.convergence_rounds, compiled.convergence_rounds);
        assert_eq!(handwritten.migrations, compiled.migrations);
        assert_eq!(handwritten.failures, compiled.failures);
    }

    #[test]
    fn json_document_has_the_required_fields() {
        let runner = ExperimentRunner::new(vec![Box::new(ModelBackend)]);
        let records = runner.run(&small_spec(PolicySpec::Listing1));
        let json = records_to_json(&records);
        for key in [
            "\"experiment\"",
            "\"scenario\"",
            "\"backend\"",
            "\"cores\"",
            "\"throughput\"",
            "\"violating_idle\"",
            "\"convergence_rounds\"",
            "\"steals_smt\"",
            "\"steals_remote\"",
            "\"remote_steal_rate\"",
            "\"per_node_violating_idle\"",
            "\"rq_backend\"",
            "\"p99_sched_latency_us\"",
            "\"steal_batch_k\"",
            "\"tasks_per_acquisition\"",
            "\"records\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    fn catalog_spec(id: ExperimentId) -> ExperimentSpec {
        catalog().into_iter().find(|s| s.id == id).expect("catalogued")
    }

    #[test]
    fn e14_runs_on_all_backends_and_reports_node_metrics() {
        let runner = ExperimentRunner::with_all_backends();
        let records = runner.run(&catalog_spec(ExperimentId::E14));
        assert_eq!(records.len(), 4);
        for r in &records {
            assert_eq!(r.per_node_violating_idle.len(), 2, "{}: one entry per node", r.backend);
            assert!(r.migrations > 0, "{}: the imbalance must drain", r.backend);
        }
        // The model and rq backends must converge; node 1 was the idle one.
        for r in records.iter().filter(|r| r.backend != "sim") {
            assert!(r.convergence_rounds.is_some(), "{} did not converge", r.backend);
            assert!(
                r.locality.count(sched_topology::StealLevel::Remote) > 0,
                "{}: work had to cross the socket",
                r.backend
            );
            assert!(
                r.per_node_violating_idle[1] >= r.per_node_violating_idle[0],
                "{}: the idle violations were on node 1",
                r.backend
            );
        }
    }

    #[test]
    fn e15_topology_aware_stealing_stays_mostly_local() {
        let runner = ExperimentRunner::new(vec![Box::new(ModelBackend)]);
        let spec = catalog_spec(ExperimentId::E15);
        let topo_aware = &runner.run(&spec)[0];
        let mut flat = spec.clone();
        flat.policy = PolicySpec::Listing1;
        let flat = &runner.run(&flat)[0];
        assert!(topo_aware.convergence_rounds.is_some());
        assert!(
            topo_aware.remote_steal_rate() < flat.remote_steal_rate(),
            "distance-ordered stealing must beat the flat chooser on locality: {} vs {}",
            topo_aware.remote_steal_rate(),
            flat.remote_steal_rate()
        );
    }

    #[test]
    fn e16_hierarchical_rounds_converge_with_local_steals_only() {
        let runner = ExperimentRunner::new(vec![Box::new(ModelBackend), Box::new(RqBackend)]);
        let records = runner.run(&catalog_spec(ExperimentId::E16));
        assert_eq!(records.len(), 2);
        for r in &records {
            assert!(r.convergence_rounds.is_some(), "{} did not converge", r.backend);
            // One hot core per node: every node can drain internally, so
            // domain-ordered balancing never *needs* a cross-node steal.
            // The model executor is deterministic and must do zero; on real
            // threads an inner-level re-check can lose a race and fall back
            // outwards, so only the overwhelming majority must stay local.
            let remote = r.locality.count(sched_topology::StealLevel::Remote);
            if r.backend == "model" {
                assert_eq!(remote, 0, "model hierarchical balancing must stay node-local");
            } else {
                assert!(
                    remote * 4 <= r.migrations,
                    "{}: {remote} of {} steals went remote — domain-ordered balancing \
                     must keep the overwhelming majority node-local",
                    r.backend,
                    r.migrations
                );
            }
        }
    }

    #[test]
    fn records_table_has_one_row_per_record() {
        let runner = ExperimentRunner::new(vec![Box::new(ModelBackend)]);
        let records = runner
            .run_catalog(&[small_spec(PolicySpec::Listing1), small_spec(PolicySpec::Weighted)]);
        assert_eq!(records_table(&records).nr_rows(), 2);
    }
}
