//! The seeded scenario fuzzer: random declarative scenarios, executed and
//! checked against the invariant block they declare.
//!
//! The declarative catalog makes experiments *data*, and data can be
//! generated: [`fuzz_scenarios`] derives a deterministic stream of
//! [`ScenarioDoc`]s from one seed — topologies x load vectors x arrival
//! drivers x nice mixes x policies (including inline DSL programs) — runs
//! each through the unified runner, and checks every produced record
//! against the scenario's `expect` block with [`check_records`]:
//!
//! * **work conservation** — a replayed scenario must converge (or end in
//!   a work-conserving final state): no core idle while another holds
//!   waiting threads;
//! * **conservation of tasks** — balancing moves threads, it must not
//!   create or destroy them (a storm drains, so its final count is zero);
//! * **non-inversion** — stealing must never make any core more loaded
//!   than the most loaded core initially was.
//!
//! Each generated document is also round-tripped through the printer and
//! parser, so the fuzzer doubles as a grammar fuzzer for
//! [`sched_dsl::parse_doc`].  Failing scenarios are returned as documents —
//! `xtask fuzz-scenarios` writes them to `experiments/repro/*.scn`, and
//! `--repro FILE` replays such a file through the same checker.

use sched_dsl::{DocDriver, DocInvariant, DocPolicy, DocTopology, ScenarioDoc};

use sched_trace::{SanityChecker, SanityKind, SanityViolation, Trace};

use crate::catalog::{from_doc, LoadedScenario};
use crate::runner::{
    run_rq_traced, run_sim_result, run_sim_traced, Driver, ExperimentRecord, ExperimentRunner,
    ExperimentSpec, ModelBackend, RqBackend, RqDequeBackend, SimEngine, SimEventBackend,
};

/// What to fuzz: the seed pins the whole scenario stream, the count bounds
/// it.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Master seed; the same seed reproduces the same scenarios.
    pub seed: u64,
    /// Number of scenarios to generate and check.
    pub count: usize,
    /// Seeded same-time orderings to sweep per scenario on the event-driven
    /// simulator (0 disables the sweep).  Each order re-runs the scenario
    /// under a different [`sched_sim::OrderingPolicy::Seeded`] tie-break
    /// and checks the outcome against the priority-ordered baseline:
    /// same-time reordering must not change whether the run finishes or
    /// how many operations complete (the choice-irrelevance and
    /// conservation lemmas, exercised on the engine itself).
    pub orders: usize,
}

/// One invariant violation (or structural failure) observed for one
/// generated scenario.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Scenario name.
    pub scenario: String,
    /// Backend whose record violated, or `"-"` for structural failures.
    pub backend: String,
    /// What was violated: an invariant keyword (`work_conservation`, …),
    /// `round_trip`, or `load`.
    pub kind: String,
    /// Human-readable description of the failure.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {} on {}: {}", self.kind, self.scenario, self.backend, self.detail)
    }
}

/// One failing scenario: the document (replayable via `--repro`) and
/// everything that went wrong with it.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The generated document, exactly as it would print.
    pub doc: ScenarioDoc,
    /// The violations its run produced.
    pub violations: Vec<Violation>,
}

/// The outcome of one fuzzing run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Scenarios generated and executed.
    pub generated: usize,
    /// Records produced and checked across all scenarios.
    pub records_checked: usize,
    /// Seeded same-time orderings executed on the event engine.
    pub orders_checked: usize,
    /// Scenarios that violated at least one expectation.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// `true` when every scenario satisfied its invariant block.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// splitmix64: tiny, seedable, statistically fine for scenario generation,
/// and dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `0..n` (`n > 0`).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Value in `lo..=hi`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `pct`%.
    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

/// Generates the `index`-th scenario of a seed's stream.
fn generate_doc(master_seed: u64, index: usize) -> ScenarioDoc {
    // Decorrelate per-scenario streams: one splitmix step over the index.
    let mut rng = Rng::new(master_seed ^ Rng::new(index as u64).next());

    let (topology, cores) = if rng.chance(10) {
        (DocTopology::DualSocket, 16u64)
    } else {
        let cores = rng.range(2, 12);
        (DocTopology::Flat(cores), cores)
    };

    let loads: Vec<u64> = match rng.below(3) {
        0 => {
            // Single hot core holding a 2x-cores pile.
            let hot = rng.below(cores) as usize;
            let mut loads = vec![0; cores as usize];
            loads[hot] = 2 * cores;
            loads
        }
        1 => {
            // A descending step.
            (0..cores).map(|i| cores.saturating_sub(i) / 2 + u64::from(i == 0)).collect()
        }
        _ => {
            // Bounded random vector, at least one thread.
            let mut loads: Vec<u64> = (0..cores).map(|_| rng.below(5)).collect();
            if loads.iter().sum::<u64>() == 0 {
                loads[0] = 1;
            }
            loads
        }
    };
    let threads: u64 = loads.iter().sum();

    // Arrival driver.  Budgets are generous: the fuzzer checks invariants,
    // not convergence speed, and a decayed tracker pays a warm-up lag.
    let (driver, budget) = match rng.below(100) {
        0..=54 => (DocDriver::Replay, 8 * threads + 256),
        55..=69 => (
            DocDriver::Burst {
                epochs: rng.range(4, 16),
                epoch_ns: 1_000_000,
                warmup_ns: 32_000_000,
                seed: Some(rng.below(1_000)),
                jitter_pct: Some(rng.below(61) as u32),
            },
            0,
        ),
        70..=84 => (
            DocDriver::Storm {
                // At least two waiting tasks per thief, so a couple of
                // settled rounds reach every idle core.
                epochs: rng.range(2, 5),
                fanout: rng.range(2 * cores, 4 * cores),
                rounds: rng.range(2, 3),
            },
            0,
        ),
        _ => (
            DocDriver::Workload {
                kind: if rng.chance(50) { "scientific".into() } else { "oltp".into() },
                seed: Some(rng.below(10_000)),
                jitter_pct: Some(rng.below(41) as u32),
            },
            8 * threads + 256,
        ),
    };

    // Policies that provably converge on thread counts.  The choice step is
    // irrelevant to the proofs (E1), so the inline programs vary it freely;
    // the filter stays Listing 1's `delta >= 2`, which is what makes the
    // work-conservation expectation sound.
    let policy = match rng.below(100) {
        0..=44 => DocPolicy::Named { name: "listing1".into(), arg: None },
        45..=64 => DocPolicy::Named { name: "steal_half".into(), arg: None },
        65..=79 => DocPolicy::Named { name: "pelt".into(), arg: None },
        _ => {
            let choose = ["max victim.load", "min victim.load", "first"][rng.below(3) as usize];
            let source = format!(
                "policy fuzzed {{\n    metric threads;\n    filter = victim.load - self.load >= 2;\n    choose = {choose};\n    steal = 1;\n}}"
            );
            DocPolicy::Inline(sched_dsl::parse(&source).expect("generated policies parse"))
        }
    };

    let is_storm = matches!(driver, DocDriver::Storm { .. });
    let is_burst = matches!(driver, DocDriver::Burst { .. });
    let batch_pct = if is_storm {
        30
    } else if matches!(driver, DocDriver::Replay) {
        20
    } else {
        0
    };
    let batch =
        if batch_pct > 0 && rng.chance(batch_pct) { Some(pick_batch(&mut rng)) } else { None };

    // The tiny-ring flavours only run storms and the simulator cannot
    // execute storms or batch sweeps, so the fuzzer pins an explicit
    // backend matrix per driver shape.  Sim-compatible scenarios include
    // the event engine, which the ordering sweep then reorders.
    let backends = if is_storm {
        vec!["rq".to_string(), "rq-deque".to_string()]
    } else if batch.is_none() {
        vec!["model".to_string(), "sim-event".to_string(), "rq".to_string(), "rq-deque".to_string()]
    } else {
        vec!["model".to_string(), "rq".to_string(), "rq-deque".to_string()]
    };

    let expect = if is_storm || is_burst {
        // Storm epochs drain, burst blips park tasks outside the system
        // mid-run; only task conservation is claimed, as in the builtin
        // E17/E22 documents.
        vec![DocInvariant::ConservationOfTasks]
    } else {
        vec![
            DocInvariant::WorkConservation,
            DocInvariant::ConservationOfTasks,
            DocInvariant::NonInversion,
        ]
    };

    ScenarioDoc {
        name: format!("fuzz seed {master_seed} #{index}"),
        experiment: "e1".into(),
        topology,
        loads,
        policy,
        backends: Some(backends),
        driver,
        budget,
        events: None,
        order: None,
        batch,
        mixed_nice: rng.chance(25),
        expect,
    }
}

fn pick_batch(rng: &mut Rng) -> sched_dsl::DocBatch {
    match rng.below(5) {
        0 => sched_dsl::DocBatch::Fixed(1),
        1 => sched_dsl::DocBatch::Fixed(2),
        2 => sched_dsl::DocBatch::Fixed(4),
        3 => sched_dsl::DocBatch::Fixed(8),
        _ => sched_dsl::DocBatch::Half,
    }
}

/// Is `loads` a work-conserving final state — no core idle while another
/// holds more than one thread?
fn is_work_conserving(loads: &[usize]) -> bool {
    !(loads.contains(&0) && loads.iter().any(|&l| l >= 2))
}

/// Checks one scenario's records against its invariant block.  Records
/// without final-load residency (the simulator's: its tasks run to
/// completion) are skipped where residency is what's checked.
pub fn check_records(
    spec: &ExperimentSpec,
    expect: &[DocInvariant],
    records: &[ExperimentRecord],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut violate = |backend: &str, inv: DocInvariant, detail: String| {
        violations.push(Violation {
            scenario: spec.scenario.clone(),
            backend: backend.to_string(),
            kind: inv.keyword().to_string(),
            detail,
        });
    };
    let initial_total = spec.nr_threads() as usize;
    let initial_max = spec.loads.iter().copied().max().unwrap_or(0);
    for record in records {
        for &inv in expect {
            match inv {
                DocInvariant::WorkConservation => match spec.driver {
                    Driver::Replay | Driver::Workload(_) => {
                        // Both sim engines run their tasks to completion and
                        // report no final residency; WC there is the ordering
                        // sweep's finished/operations check instead.
                        if record.backend.starts_with("sim") {
                            continue;
                        }
                        let converged = record.convergence_rounds.is_some();
                        let settled = !record.final_loads.is_empty()
                            && is_work_conserving(&record.final_loads);
                        if !converged && !settled {
                            violate(
                                record.backend,
                                inv,
                                format!(
                                    "did not converge within {} rounds; final loads {:?}",
                                    spec.budget_rounds, record.final_loads
                                ),
                            );
                        }
                    }
                    // Burst blips and storm epochs are transient by design;
                    // the builtin documents do not claim WC there and the
                    // fuzzer does not generate such claims.
                    _ => {}
                },
                DocInvariant::ConservationOfTasks => {
                    if record.final_loads.is_empty() {
                        continue;
                    }
                    let final_total: usize = record.final_loads.iter().sum();
                    // A storm drains the machine at every epoch boundary, so
                    // conservation there means "nothing left behind".
                    let want = if spec.driver.storm().is_some() { 0 } else { initial_total };
                    if final_total != want {
                        violate(
                            record.backend,
                            inv,
                            format!(
                                "{final_total} threads at the end, expected {want} (final loads {:?})",
                                record.final_loads
                            ),
                        );
                    }
                }
                DocInvariant::NonInversion => {
                    if record.final_loads.is_empty() || !matches!(spec.driver, Driver::Replay) {
                        continue;
                    }
                    let final_max = record.final_loads.iter().copied().max().unwrap_or(0);
                    if final_max > initial_max {
                        violate(
                            record.backend,
                            inv,
                            format!(
                                "a core ended with {final_max} threads, above the initial maximum \
                                 {initial_max} (final loads {:?})",
                                record.final_loads
                            ),
                        );
                    }
                }
            }
        }
    }
    violations
}

/// Checks one seeded same-time ordering of a scenario on the event engine
/// against its priority-ordered baseline: the reordering must not change
/// whether the run finishes or how many operations complete.  `baseline`
/// is the result of `run_sim_result(SimEngine::Event, spec)` with no
/// `order` set.
pub fn check_ordering(
    spec: &ExperimentSpec,
    baseline: &sched_sim::SimResult,
    order_seed: u64,
) -> Vec<Violation> {
    let mut seeded_spec = spec.clone();
    seeded_spec.order = Some(order_seed);
    let Some(seeded) = run_sim_result(SimEngine::Event, &seeded_spec) else {
        return vec![Violation {
            scenario: spec.scenario.clone(),
            backend: "sim-event".into(),
            kind: "ordering".into(),
            detail: format!("order {order_seed}: the event engine declined the spec"),
        }];
    };
    let mut violations = Vec::new();
    let mut violate = |detail: String| {
        violations.push(Violation {
            scenario: spec.scenario.clone(),
            backend: "sim-event".into(),
            kind: "ordering".into(),
            detail,
        });
    };
    if seeded.finished != baseline.finished {
        violate(format!(
            "order {order_seed}: finished = {} but the priority-ordered baseline finished = {}",
            seeded.finished, baseline.finished
        ));
    }
    if seeded.operations != baseline.operations {
        violate(format!(
            "order {order_seed}: {} operations completed, baseline completed {}",
            seeded.operations, baseline.operations
        ));
    }
    violations
}

/// The trace-driven sanity leg: re-runs the scenario with a decision
/// recorder attached and folds the event stream through the online
/// invariant checker ([`sched_trace::sanity`]).
///
/// Two substrates are checked, each at the strictness its trace can bear:
///
/// * the **event-driven simulator** is deterministic and runs every task
///   to completion, so its trace is checked in full (relaxed mode — the
///   drain still interleaves same-timestamp events across cores) and,
///   when the run finished, cross-checked against an all-idle final
///   machine;
/// * the **lock-free runqueue machine** is genuinely concurrent, so only
///   the order-insensitive conservation cross-check is trustworthy there:
///   the per-core occupancy derived from placements and migrations must
///   match the loads the machine itself reports at the end.  Storm and
///   burst drivers complete tasks mid-run (events the runqueue backends
///   do not emit), so the rq leg covers the converge-driver scenarios.
///
/// Each violation ships the offending event span as its detail — the
/// repro document tells you *what* to re-run, the excerpt shows *where*
/// in the decision stream it went wrong.
pub fn check_sanity(scenario: &LoadedScenario) -> Vec<Violation> {
    let spec = &scenario.spec;
    let mut violations = Vec::new();
    let mut push = |backend: &str, trace: &Trace, v: &SanityViolation| {
        violations.push(Violation {
            scenario: scenario.doc.name.clone(),
            backend: backend.into(),
            kind: format!("sanity-{}", v.kind),
            detail: format!("the decision trace breaks an invariant\n{}", v.excerpt(trace, 2)),
        });
    };

    let finished = run_sim_result(SimEngine::Event, spec).is_some_and(|r| r.finished);
    if let Some((_, trace)) = run_sim_traced(SimEngine::Event, spec) {
        let all_idle = vec![0u64; spec.loads.len()];
        let final_loads = if finished { Some(&all_idle[..]) } else { None };
        for v in &SanityChecker::check_trace(&trace, false, final_loads) {
            push("sim-event", &trace, v);
        }
    }

    if spec.driver.storm().is_none() && spec.driver.burst().is_none() {
        if let Some((record, trace)) = run_rq_traced::<sched_rq::DequeRq>("rq-deque", spec) {
            let final_loads: Vec<u64> = record.final_loads.iter().map(|&n| n as u64).collect();
            for v in &SanityChecker::check_trace(&trace, false, Some(&final_loads)) {
                if matches!(v.kind, SanityKind::TaskLost | SanityKind::TaskDuplicated) {
                    push("rq-deque", &trace, v);
                }
            }
        }
    }
    violations
}

/// Runs one loaded scenario through the runner and its invariant block.
/// A document carrying an `order` seed (an ordering-sweep repro) is
/// additionally re-checked against its priority-ordered baseline.
pub fn check_scenario(scenario: &LoadedScenario) -> (usize, Vec<Violation>) {
    let runner = ExperimentRunner::new(vec![
        Box::new(ModelBackend),
        Box::new(SimEventBackend),
        Box::new(RqBackend),
        Box::new(RqDequeBackend),
    ]);
    let records = runner.run(scenario.spec.clone());
    let mut violations = check_records(&scenario.spec, scenario.expectations(), &records);
    violations.extend(check_sanity(scenario));
    if let Some(order_seed) = scenario.spec.order {
        let mut baseline_spec = scenario.spec.clone();
        baseline_spec.order = None;
        if let Some(baseline) = run_sim_result(SimEngine::Event, &baseline_spec) {
            violations.extend(check_ordering(&baseline_spec, &baseline, order_seed));
        }
    }
    (records.len(), violations)
}

/// Generates, executes and checks `config.count` scenarios from
/// `config.seed`.
pub fn fuzz_scenarios(config: &FuzzConfig) -> FuzzReport {
    let mut report = FuzzReport::default();
    for index in 0..config.count {
        let doc = generate_doc(config.seed, index);
        report.generated += 1;
        let mut violations = Vec::new();

        // The grammar leg: every generated document must survive
        // print -> parse unchanged.
        let printed = sched_dsl::print_scenario(&doc);
        match sched_dsl::parse_doc(&printed) {
            Ok(parsed) if parsed == vec![doc.clone()] => {}
            Ok(_) => violations.push(Violation {
                scenario: doc.name.clone(),
                backend: "-".into(),
                kind: "round_trip".into(),
                detail: "printing and re-parsing changed the document".into(),
            }),
            Err(e) => violations.push(Violation {
                scenario: doc.name.clone(),
                backend: "-".into(),
                kind: "round_trip".into(),
                detail: format!("printed document does not parse: {e}"),
            }),
        }

        // The execution leg.
        match from_doc(&doc) {
            Ok(spec) => {
                let scenario = LoadedScenario { doc: doc.clone(), spec };
                let (nr_records, mut run_violations) = check_scenario(&scenario);
                report.records_checked += nr_records;
                violations.append(&mut run_violations);

                // The ordering-sweep leg: re-run the scenario on the event
                // engine under `config.orders` seeded same-time tie-breaks
                // and demand the priority-ordered outcome.  A failing order
                // becomes its own repro document pinning the order seed, so
                // `--repro` replays exactly the permutation that broke.
                if config.orders > 0 {
                    if let Some(baseline) = run_sim_result(SimEngine::Event, &scenario.spec) {
                        for k in 0..config.orders {
                            let order_seed =
                                Rng::new(config.seed ^ ((index as u64) << 32) ^ k as u64).next();
                            report.orders_checked += 1;
                            let order_violations =
                                check_ordering(&scenario.spec, &baseline, order_seed);
                            if !order_violations.is_empty() {
                                let mut repro = doc.clone();
                                repro.name = format!("{} order {order_seed}", doc.name);
                                repro.order = Some(order_seed);
                                repro.backends = Some(vec!["sim-event".to_string()]);
                                report
                                    .failures
                                    .push(FuzzFailure { doc: repro, violations: order_violations });
                            }
                        }
                    }
                }
            }
            Err(e) => violations.push(Violation {
                scenario: doc.name.clone(),
                backend: "-".into(),
                kind: "load".into(),
                detail: format!("generated document does not load: {e}"),
            }),
        }

        if !violations.is_empty() {
            report.failures.push(FuzzFailure { doc, violations });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_stream_is_deterministic() {
        let a = generate_doc(7, 3);
        let b = generate_doc(7, 3);
        assert_eq!(a, b);
        let c = generate_doc(8, 3);
        assert_ne!(a, c, "different seeds must give different scenarios");
    }

    #[test]
    fn a_small_fuzz_run_is_clean() {
        let report = fuzz_scenarios(&FuzzConfig { seed: 7, count: 4, orders: 0 });
        assert_eq!(report.generated, 4);
        assert!(report.records_checked > 0);
        assert_eq!(report.orders_checked, 0, "orders: 0 must disable the sweep");
        let rendered: Vec<String> = report
            .failures
            .iter()
            .flat_map(|f| f.violations.iter().map(|v| v.to_string()))
            .collect();
        assert!(report.is_clean(), "violations: {rendered:#?}");
    }

    #[test]
    fn a_seeded_ordering_sweep_is_clean() {
        // The CI sweep in miniature: every sim-compatible scenario re-runs
        // under seeded same-time permutations, and none of them may change
        // the outcome.
        let report = fuzz_scenarios(&FuzzConfig { seed: 7, count: 3, orders: 2 });
        assert!(report.orders_checked > 0, "seed 7 generates sim-compatible scenarios");
        let rendered: Vec<String> = report
            .failures
            .iter()
            .flat_map(|f| f.violations.iter().map(|v| v.to_string()))
            .collect();
        assert!(report.is_clean(), "violations: {rendered:#?}");
    }

    #[test]
    fn an_ordering_repro_document_replays_through_the_checker() {
        // A failure doc produced by the sweep pins `order <seed>` and the
        // sim-event backend; `--repro` feeds it back through
        // check_scenario, which must re-run the ordering comparison.
        let mut doc = (0..64)
            .map(|index| generate_doc(7, index))
            .find(|d| !matches!(d.driver, DocDriver::Storm { .. }) && d.batch.is_none())
            .expect("seed 7 generates a sim-compatible scenario");
        doc.order = Some(12345);
        doc.backends = Some(vec!["sim-event".to_string()]);
        let printed = sched_dsl::print_scenario(&doc);
        let parsed = sched_dsl::parse_doc(&printed).expect("repro docs parse");
        assert_eq!(parsed, vec![doc.clone()]);
        let spec = from_doc(&doc).expect("repro docs load");
        let (nr_records, violations) = check_scenario(&LoadedScenario { doc, spec });
        assert_eq!(nr_records, 1, "only the sim-event backend runs a repro doc");
        let rendered: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
        assert!(violations.is_empty(), "{rendered:#?}");
    }

    #[test]
    fn the_checker_flags_planted_violations() {
        let doc = generate_doc(1, 0);
        let spec = from_doc(&doc).expect("generated docs load");
        // A fabricated record that conserves nothing and inverts the load.
        let runner = ExperimentRunner::new(vec![Box::new(ModelBackend)]);
        let mut record = runner.run(crate::catalog::spec(crate::ExperimentId::E2)).remove(0);
        record.convergence_rounds = None;
        record.final_loads = vec![spec.nr_threads() as usize + 3; spec.loads.len()];
        let violations = check_records(
            &spec,
            &[
                DocInvariant::WorkConservation,
                DocInvariant::ConservationOfTasks,
                DocInvariant::NonInversion,
            ],
            &[record],
        );
        let kinds: Vec<&str> = violations.iter().map(|v| v.kind.as_str()).collect();
        assert!(kinds.contains(&"conservation_of_tasks"), "{kinds:?}");
    }

    #[test]
    fn builtin_scenarios_satisfy_their_own_invariant_blocks() {
        // The declared expectations are not decorative: the catalogued e2
        // and e5 scenarios (fast, deterministic) must pass their own blocks.
        for scenario in crate::catalog::builtin()
            .into_iter()
            .filter(|s| matches!(s.spec.id, crate::ExperimentId::E2 | crate::ExperimentId::E5))
        {
            let (_, violations) = check_scenario(&scenario);
            let rendered: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
            assert!(violations.is_empty(), "{}: {rendered:#?}", scenario.doc.name);
        }
    }
}
