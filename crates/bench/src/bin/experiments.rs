//! The experiment harness: regenerates every table of `EXPERIMENTS.md`.
//!
//! Usage:
//!
//! ```text
//! cargo run -p sched-bench --release --bin experiments -- all
//! cargo run -p sched-bench --release --bin experiments -- e5 e8
//! cargo run -p sched-bench --release --bin experiments -- --markdown e9
//! cargo run -p sched-bench --release --bin experiments -- list
//! ```

use sched_bench::{all_experiments, run_experiment, ExperimentId};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let markdown = args.iter().any(|a| a == "--markdown");
    let wanted: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();

    if wanted.is_empty() || wanted.iter().any(|a| a == "list") {
        eprintln!("available experiments:");
        for id in ExperimentId::all() {
            eprintln!("  {}", id.title());
        }
        eprintln!("\nrun with: cargo run -p sched-bench --release --bin experiments -- all | e<N>...");
        if wanted.is_empty() || wanted.iter().all(|a| a == "list") {
            return;
        }
    }

    let runs: Vec<(ExperimentId, Vec<sched_metrics::Table>)> = if wanted.iter().any(|a| a == "all") {
        all_experiments()
    } else {
        wanted
            .iter()
            .filter(|a| *a != "list")
            .map(|a| {
                let id = ExperimentId::parse(a)
                    .unwrap_or_else(|| panic!("unknown experiment `{a}` (try `list`)"));
                (id, run_experiment(id))
            })
            .collect()
    };

    for (id, tables) in runs {
        println!("\n################ {} ################\n", id.title());
        for table in tables {
            if markdown {
                println!("{}", table.to_markdown());
            } else {
                println!("{}", table.to_text());
            }
        }
    }
}
