//! The experiment harness: regenerates every table of `EXPERIMENTS.md` and
//! the machine-readable `BENCH_results.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run -p sched-bench --release --bin experiments -- all
//! cargo run -p sched-bench --release --bin experiments -- e5 e8
//! cargo run -p sched-bench --release --bin experiments -- --markdown e9
//! cargo run -p sched-bench --release --bin experiments -- list
//! cargo run -p sched-bench --release --bin experiments -- --json
//! cargo run -p sched-bench --release --bin experiments -- --json --out results.json
//! cargo run -p sched-bench --release --bin experiments -- --trace traces/ e9
//! ```
//!
//! `--trace DIR` (any mode) exports one Chrome/Perfetto `*.trace.json` per
//! traced sim/rq run into `DIR` — open them at <https://ui.perfetto.dev>.
//!
//! `--json` runs the unified [`sched_bench::ExperimentRunner`] catalog —
//! every experiment on every backend (model, sim, rq) — prints the combined
//! table, and writes the records to `BENCH_results.json` (or `--out PATH`).

use sched_bench::{all_experiments, run_experiment, ExperimentId};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--trace DIR` enables decision tracing for the whole invocation:
    // every sim/rq run exports a Chrome/Perfetto `*.trace.json` into DIR.
    if let Some(i) = args.iter().position(|a| a == "--trace") {
        match args.get(i + 1) {
            Some(dir) if !dir.starts_with("--") => {
                sched_bench::set_trace_dir(std::path::Path::new(dir));
                args.drain(i..=i + 1);
            }
            _ => {
                eprintln!("error: --trace requires a directory argument");
                std::process::exit(2);
            }
        }
    }
    let args = args;
    let markdown = args.iter().any(|a| a == "--markdown");

    if args.iter().any(|a| a == "--json") {
        run_unified_json(&args);
        return;
    }

    let wanted: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();

    if wanted.is_empty() || wanted.iter().any(|a| a == "list") {
        eprintln!("available experiments:");
        for id in ExperimentId::all() {
            eprintln!("  {}", id.title());
        }
        eprintln!("\nrun with: cargo run -p sched-bench --release --bin experiments -- all | e<N>... | --json");
        if wanted.is_empty() || wanted.iter().all(|a| a == "list") {
            return;
        }
    }

    let runs: Vec<(ExperimentId, Vec<sched_metrics::Table>)> = if wanted.iter().any(|a| a == "all")
    {
        all_experiments()
    } else {
        wanted
            .iter()
            .filter(|a| *a != "list")
            .map(|a| {
                let id = ExperimentId::parse(a)
                    .unwrap_or_else(|| panic!("unknown experiment `{a}` (try `list`)"));
                (id, run_experiment(id))
            })
            .collect()
    };

    for (id, tables) in runs {
        println!("\n################ {} ################\n", id.title());
        for table in tables {
            if markdown {
                println!("{}", table.to_markdown());
            } else {
                println!("{}", table.to_text());
            }
        }
    }
}

/// `--json [--out PATH] [--scenarios DIR] [--full-records] [e<N>...]`:
/// the unified runner over every backend, optionally restricted to the
/// named experiments.  `--scenarios DIR` runs the `.scn` documents found
/// in `DIR` instead of the builtin catalog; `--full-records` additionally
/// serializes each record's `final_loads` vector (schema v7).
fn run_unified_json(args: &[String]) {
    let flag_value = |flag: &str| -> Option<String> {
        match args.iter().position(|a| a == flag) {
            Some(i) => match args.get(i + 1) {
                Some(path) if !path.starts_with("--") => Some(path.clone()),
                _ => {
                    eprintln!("error: {flag} requires a path argument");
                    std::process::exit(2);
                }
            },
            None => None,
        }
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_results.json".to_string());
    let skip: Vec<usize> = ["--out", "--scenarios"]
        .iter()
        .filter_map(|f| args.iter().position(|a| a == f).map(|i| i + 1))
        .collect();

    let mut specs = match flag_value("--scenarios") {
        Some(dir) => sched_bench::load_dir(std::path::Path::new(&dir))
            .unwrap_or_else(|e| {
                eprintln!("error: cannot load scenarios from {dir}: {e}");
                std::process::exit(2);
            })
            .into_iter()
            .map(|s| s.spec)
            .collect(),
        None => sched_bench::catalog(),
    };
    let wanted: Vec<ExperimentId> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !skip.contains(i) && !a.starts_with("--"))
        .map(|(_, a)| {
            ExperimentId::parse(a).unwrap_or_else(|| {
                eprintln!("error: unknown experiment `{a}` (try `list`)");
                std::process::exit(2);
            })
        })
        .collect();
    if !wanted.is_empty() {
        specs.retain(|s| wanted.contains(&s.id));
    }
    let runner = sched_bench::ExperimentRunner::with_all_backends();
    eprintln!("running {} experiments on {} backends...", specs.len(), runner.backends().len());
    let records = runner.run_catalog(specs);

    // Write the artifact before printing the table: if stdout is a pipe
    // that closes early (`... | head`), the records must already be on
    // disk.
    let json = if args.iter().any(|a| a == "--full-records") {
        sched_bench::records_to_json_full(&records)
    } else {
        sched_bench::records_to_json(&records)
    };
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {} records to {out_path}", records.len());

    println!("{}", sched_bench::records_table(&records).to_text());
}
