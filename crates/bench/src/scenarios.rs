//! Shared scenario builders used by both the experiment harness and the
//! Criterion benches.

use std::sync::Arc;

use sched_core::prelude::*;
use sched_sim::{
    CfsBugs, CfsLikeScheduler, Engine, OptimisticScheduler, SimConfig, SimResult, SimScheduler,
};
use sched_topology::{MachineTopology, TopologyBuilder};
use sched_workloads::{OltpWorkload, ScientificWorkload, Workload};

/// The machine used by the simulator experiments: a dual-socket server of
/// the kind the "wasted cores" study ran on.
pub fn dual_socket() -> MachineTopology {
    TopologyBuilder::new().sockets(2).cores_per_socket(8).build()
}

/// The larger machine used by the hierarchical experiment: eight NUMA nodes.
pub fn eight_node() -> MachineTopology {
    TopologyBuilder::eight_node_numa()
}

/// The fork-join workload of experiment E9, sized to the machine.
pub fn scientific_workload(nr_cores: usize) -> Workload {
    ScientificWorkload {
        nr_threads: nr_cores,
        iterations: 8,
        phase_ns: 4_000_000,
        jitter: 0.05,
        seed: 42,
        fork_on_core: Some(0),
    }
    .generate()
}

/// The OLTP workload of experiment E10, sized to the machine.
pub fn oltp_workload(nr_cores: usize) -> Workload {
    OltpWorkload {
        nr_workers: nr_cores * 2,
        transactions: 40,
        service_ns: 500_000,
        think_ns: 250_000,
        jitter: 0.2,
        seed: 7,
        initial_spread: 4,
    }
    .generate()
}

/// Runs `workload` on `topo` under the named scheduler.
pub fn run_sim(topo: &MachineTopology, workload: &Workload, scheduler: SchedulerKind) -> SimResult {
    let boxed: Box<dyn SimScheduler> = match scheduler {
        SchedulerKind::Optimistic => Box::new(OptimisticScheduler::new(Policy::simple())),
        SchedulerKind::OptimisticNuma => {
            let policy = Policy::simple().with_choice(Box::new(NumaAwareChoice::new(
                Arc::new(topo.clone()),
                LoadMetric::NrThreads,
            )));
            Box::new(OptimisticScheduler::new(policy))
        }
        SchedulerKind::CfsSane => Box::new(CfsLikeScheduler::new(CfsBugs::none())),
        SchedulerKind::CfsBuggy => Box::new(CfsLikeScheduler::new(CfsBugs::all())),
    };
    Engine::new(SimConfig::default(), Some(topo), workload, boxed).run()
}

/// The schedulers compared by the simulator experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// The verified optimistic balancer (Listing 1 policy).
    Optimistic,
    /// The verified balancer with a NUMA-aware choice step.
    OptimisticNuma,
    /// The CFS-like baseline without injected bugs.
    CfsSane,
    /// The CFS-like baseline with both wasted-cores bugs.
    CfsBuggy,
}

impl SchedulerKind {
    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Optimistic => "optimistic (verified)",
            SchedulerKind::OptimisticNuma => "optimistic + NUMA choice",
            SchedulerKind::CfsSane => "cfs-like (no bugs)",
            SchedulerKind::CfsBuggy => "cfs-like (wasted-cores bugs)",
        }
    }
}

/// Builds the policy variants compared by the choice-irrelevance experiment.
pub fn choice_variants(topo: &Arc<MachineTopology>) -> Vec<(&'static str, Policy)> {
    vec![
        ("first", Policy::simple().with_choice(Box::new(FirstChoice))),
        ("max_load", Policy::simple()),
        ("random", Policy::simple().with_choice(Box::new(RandomChoice::new(7)))),
        (
            "numa_aware",
            Policy::simple().with_choice(Box::new(NumaAwareChoice::new(
                Arc::clone(topo),
                LoadMetric::NrThreads,
            ))),
        ),
        (
            "min_migration_cost",
            Policy::simple().with_choice(Box::new(MinMigrationCostChoice::new(
                Arc::clone(topo),
                LoadMetric::NrThreads,
            ))),
        ),
        (
            "group_aware",
            Policy::simple().with_choice(Box::new(GroupAwareChoice::new(
                Arc::clone(topo),
                LoadMetric::NrThreads,
            ))),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builders_produce_valid_workloads() {
        let topo = dual_socket();
        assert_eq!(topo.nr_cpus(), 16);
        assert!(scientific_workload(topo.nr_cpus()).validate().is_ok());
        assert!(oltp_workload(topo.nr_cpus()).validate().is_ok());
        assert_eq!(choice_variants(&Arc::new(topo)).len(), 6);
    }

    #[test]
    fn scheduler_kinds_have_distinct_names() {
        let names: std::collections::BTreeSet<_> = [
            SchedulerKind::Optimistic,
            SchedulerKind::OptimisticNuma,
            SchedulerKind::CfsSane,
            SchedulerKind::CfsBuggy,
        ]
        .iter()
        .map(|k| k.name())
        .collect();
        assert_eq!(names.len(), 4);
    }
}
