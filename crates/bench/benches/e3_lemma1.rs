//! E3: cost of the exhaustive Lemma 1 check (the Leon-substitute workload).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sched_core::prelude::*;
use sched_verify::{lemmas, Scope};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_lemma1");
    group.sample_size(20);
    for (name, scope) in
        [("small(3c,5t)", Scope::small()), ("default(4c,6t)", Scope::default_scope())]
    {
        group.bench_with_input(BenchmarkId::from_parameter(name), &scope, |b, scope| {
            let balancer = Balancer::new(Policy::simple());
            b.iter(|| lemmas::check_lemma1(&balancer, scope))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
