//! E8: rounds-to-work-conservation for growing machines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sched_core::prelude::*;
use sched_workloads::{ImbalancePattern, StaticImbalance};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_convergence");
    group.sample_size(30);
    for &cores in &[8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(cores), &cores, |b, &cores| {
            let loads = StaticImbalance::new(cores, cores * 2, ImbalancePattern::SingleHot).loads();
            let balancer = Balancer::new(Policy::simple());
            b.iter(|| {
                let mut system = SystemState::from_loads(&loads);
                let result =
                    converge(&mut system, &balancer, RoundSchedule::AllSelectThenSteal, cores * 16);
                assert!(result.converged());
                result.rounds
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
