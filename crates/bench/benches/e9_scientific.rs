//! E9: the fork-join scientific workload, verified scheduler vs buggy CFS.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sched_bench::scenarios::{dual_socket, run_sim, scientific_workload, SchedulerKind};

fn bench(c: &mut Criterion) {
    let topo = dual_socket();
    let workload = scientific_workload(topo.nr_cpus());
    let mut group = c.benchmark_group("e9_scientific");
    group.sample_size(10);
    for kind in [SchedulerKind::Optimistic, SchedulerKind::CfsSane, SchedulerKind::CfsBuggy] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            b.iter(|| run_sim(&topo, &workload, kind).makespan_ns)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
