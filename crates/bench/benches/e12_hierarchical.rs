//! E12: hierarchical / NUMA-aware choice policies on an 8-node machine.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sched_bench::scenarios::eight_node;
use sched_core::prelude::*;

fn bench(c: &mut Criterion) {
    let topo = Arc::new(eight_node());
    let variants: Vec<(&str, Policy)> = vec![
        ("flat", Policy::simple()),
        (
            "numa_aware",
            Policy::simple().with_choice(Box::new(NumaAwareChoice::new(
                Arc::clone(&topo),
                LoadMetric::NrThreads,
            ))),
        ),
        (
            "group_aware",
            Policy::simple().with_choice(Box::new(GroupAwareChoice::new(
                Arc::clone(&topo),
                LoadMetric::NrThreads,
            ))),
        ),
    ];
    let mut group = c.benchmark_group("e12_hierarchical");
    group.sample_size(10);
    for (name, policy) in variants {
        let balancer = Balancer::new(policy);
        group.bench_with_input(BenchmarkId::from_parameter(name), &balancer, |b, balancer| {
            b.iter(|| {
                let mut system = SystemState::with_topology(&topo);
                for t in 0..(topo.nr_cpus() as u64 * 2) {
                    system.core_mut(CoreId(0)).enqueue(Task::new(TaskId(t)));
                }
                let result = converge(
                    &mut system,
                    balancer,
                    RoundSchedule::AllSelectThenSteal,
                    topo.nr_cpus() * 16,
                );
                assert!(result.converged());
                result.rounds
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
