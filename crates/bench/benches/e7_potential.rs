//! E7: cost of evaluating the pairwise load-difference potential d.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sched_core::prelude::*;
use sched_workloads::{ImbalancePattern, StaticImbalance};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_potential");
    for &cores in &[8usize, 64, 256, 1024] {
        let loads = StaticImbalance::new(cores, cores * 2, ImbalancePattern::Random).loads();
        let system = SystemState::from_loads(&loads);
        group.bench_with_input(BenchmarkId::from_parameter(cores), &system, |b, system| {
            b.iter(|| potential(system, LoadMetric::NrThreads))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
