//! E10: the OLTP workload, verified scheduler vs buggy CFS.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sched_bench::scenarios::{dual_socket, oltp_workload, run_sim, SchedulerKind};

fn bench(c: &mut Criterion) {
    let topo = dual_socket();
    let workload = oltp_workload(topo.nr_cpus());
    let mut group = c.benchmark_group("e10_database");
    group.sample_size(10);
    for kind in [SchedulerKind::Optimistic, SchedulerKind::CfsSane, SchedulerKind::CfsBuggy] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            b.iter(|| run_sim(&topo, &workload, kind).operations)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
