//! E1: cost of a full balancing round under each step-2 choice policy.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sched_bench::scenarios::{choice_variants, dual_socket};
use sched_core::prelude::*;

fn bench(c: &mut Criterion) {
    let topo = Arc::new(dual_socket());
    let mut group = c.benchmark_group("e1_choice_irrelevance");
    group.sample_size(30);
    for (name, policy) in choice_variants(&topo) {
        let balancer = Balancer::new(policy);
        group.bench_with_input(BenchmarkId::from_parameter(name), &balancer, |b, balancer| {
            b.iter(|| {
                let mut system =
                    SystemState::from_loads(&[12, 0, 0, 0, 4, 0, 0, 0, 2, 0, 0, 0, 6, 0, 0, 0]);
                let executor = ConcurrentRound::new(balancer);
                executor.execute(&mut system, &RoundSchedule::AllSelectThenSteal)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
