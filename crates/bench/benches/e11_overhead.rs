//! E11: lock-less optimistic balancing vs the fully locked pessimistic
//! baseline, on the threaded runqueue substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sched_core::{CoreId, Policy};
use sched_rq::MultiQueue;

fn loads(cores: usize) -> Vec<usize> {
    (0..cores).map(|i| if i % 4 == 0 { 6 } else { 0 }).collect()
}

fn bench(c: &mut Criterion) {
    let policy = Policy::simple();
    let mut group = c.benchmark_group("e11_overhead");
    for &cores in &[4usize, 16, 64] {
        let mq: MultiQueue = MultiQueue::with_loads(&loads(cores));
        group.bench_with_input(BenchmarkId::new("optimistic", cores), &mq, |b, mq| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % cores;
                mq.balance_once(CoreId(i), &policy)
            })
        });
        let mq: MultiQueue = MultiQueue::with_loads(&loads(cores));
        group.bench_with_input(BenchmarkId::new("pessimistic", cores), &mq, |b, mq| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % cores;
                mq.balance_once_pessimistic(CoreId(i), &policy)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
