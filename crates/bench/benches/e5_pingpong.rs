//! E5: cost of the counterexample search that finds the §4.3 ping-pong.

use criterion::{criterion_group, criterion_main, Criterion};
use sched_core::prelude::*;
use sched_verify::{find_non_conserving_cycle, ChoiceStrategy, Scope};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_pingpong");
    group.sample_size(10);
    group.bench_function("greedy_refuted", |b| {
        let balancer = Balancer::new(Policy::greedy());
        b.iter(|| {
            find_non_conserving_cycle(&balancer, &Scope::small(), ChoiceStrategy::Adversarial)
                .expect("the ping-pong must be found")
        })
    });
    group.bench_function("listing1_proved", |b| {
        let balancer = Balancer::new(Policy::simple());
        b.iter(|| {
            assert!(find_non_conserving_cycle(
                &balancer,
                &Scope::small(),
                ChoiceStrategy::Adversarial
            )
            .is_none())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
