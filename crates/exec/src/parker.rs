//! Worker parking: a token parker per worker plus the shared idle stack.
//!
//! The executor's idle protocol has two halves.  Each worker owns a
//! [`Parker`] — a one-shot token it blocks on when it runs out of work —
//! and the executor keeps an [`IdleStack`] of the workers currently
//! parked, in park order.  Producers wake workers through the stack:
//!
//! * a wakeup aimed at a specific core unparks *that* core's worker if it
//!   is on the stack (the task was seated on its runqueue, nobody else
//!   will run it);
//! * an undirected "work exists somewhere" nudge pops the **top** of the
//!   stack — last parked, first woken — so the most recently active
//!   worker (warmest cache, least likely to have been descheduled) takes
//!   the hit and long-idle workers stay asleep.
//!
//! The token makes the classic publish/re-check race benign: a worker
//! *registers* on the idle stack, *re-checks* its sources, and only then
//! blocks.  A producer that enqueues after the re-check necessarily sees
//! the registration and deposits the token, so the park returns
//! immediately instead of sleeping through the wakeup.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A one-shot wakeup token one worker blocks on.
///
/// `unpark` deposits the token; `park_timeout` consumes it, blocking until
/// it is present or the timeout lapses.  Tokens do not accumulate: any
/// number of `unpark`s between two parks release exactly one park, which
/// is the right semantics for "there may be work, go look".
#[derive(Debug, Default)]
pub struct Parker {
    token: Mutex<bool>,
    cv: Condvar,
}

impl Parker {
    /// Creates a parker with no token deposited.
    pub fn new() -> Self {
        Parker::default()
    }

    /// Blocks until a token is deposited or `timeout` lapses, consuming
    /// the token if present.  Returns `true` if it was woken by a token,
    /// `false` on timeout.  Never blocks when the token is already there.
    pub fn park_timeout(&self, timeout: Duration) -> bool {
        let mut token = self.token.lock().expect("parker lock poisoned");
        if !*token {
            let deadline = std::time::Instant::now() + timeout;
            while !*token {
                let now = std::time::Instant::now();
                let Some(left) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    break;
                };
                let (guard, _) = self.cv.wait_timeout(token, left).expect("parker lock poisoned");
                token = guard;
            }
        }
        let woken = *token;
        *token = false;
        woken
    }

    /// Deposits the wakeup token and wakes the parked worker, if any.
    pub fn unpark(&self) {
        let mut token = self.token.lock().expect("parker lock poisoned");
        *token = true;
        self.cv.notify_one();
    }
}

/// The shared registry of parked workers, in park order (a stack).
#[derive(Debug, Default)]
pub struct IdleStack {
    parked: Mutex<Vec<usize>>,
}

impl IdleStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        IdleStack::default()
    }

    /// Registers `worker` as parked (pushes it on top).  Must be called
    /// *before* the worker's final re-check of its work sources.
    pub fn push(&self, worker: usize) {
        let mut parked = self.parked.lock().expect("idle stack poisoned");
        debug_assert!(!parked.contains(&worker), "worker parked twice");
        parked.push(worker);
    }

    /// Deregisters `worker` wherever it sits on the stack.  Returns `true`
    /// if it was still registered — `false` means a producer already popped
    /// it (and deposited a token the worker's next park will consume).
    pub fn remove(&self, worker: usize) -> bool {
        let mut parked = self.parked.lock().expect("idle stack poisoned");
        match parked.iter().position(|&w| w == worker) {
            Some(at) => {
                parked.remove(at);
                true
            }
            None => false,
        }
    }

    /// Pops the most recently parked worker (last parked, first woken).
    pub fn pop_any(&self) -> Option<usize> {
        self.parked.lock().expect("idle stack poisoned").pop()
    }

    /// Pops `worker` specifically, if it is registered.
    pub fn pop_specific(&self, worker: usize) -> bool {
        self.remove(worker)
    }

    /// Number of currently registered workers.
    pub fn len(&self) -> usize {
        self.parked.lock().expect("idle stack poisoned").len()
    }

    /// `true` when no worker is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the whole stack, top first (shutdown wakes everyone).
    pub fn drain(&self) -> Vec<usize> {
        let mut parked = self.parked.lock().expect("idle stack poisoned");
        let mut all = std::mem::take(&mut *parked);
        all.reverse();
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn a_deposited_token_makes_park_immediate() {
        let p = Parker::new();
        p.unpark();
        let start = Instant::now();
        assert!(p.park_timeout(Duration::from_secs(5)), "token was waiting");
        assert!(start.elapsed() < Duration::from_secs(1), "must not block");
        // The token was consumed: the next park times out.
        assert!(!p.park_timeout(Duration::from_millis(1)));
    }

    #[test]
    fn tokens_do_not_accumulate() {
        let p = Parker::new();
        p.unpark();
        p.unpark();
        assert!(p.park_timeout(Duration::from_millis(1)));
        assert!(!p.park_timeout(Duration::from_millis(1)), "one token, one wake");
    }

    #[test]
    fn unpark_wakes_a_blocked_parker() {
        let p = Arc::new(Parker::new());
        let p2 = Arc::clone(&p);
        let t = std::thread::spawn(move || p2.park_timeout(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        p.unpark();
        assert!(t.join().unwrap(), "woken by token, not timeout");
    }

    #[test]
    fn the_stack_wakes_last_parked_first() {
        let s = IdleStack::new();
        s.push(0);
        s.push(1);
        s.push(2);
        assert_eq!(s.pop_any(), Some(2));
        assert_eq!(s.pop_any(), Some(1));
        assert!(s.pop_specific(0));
        assert!(!s.pop_specific(0), "already popped");
        assert!(s.is_empty());
    }

    #[test]
    fn drain_empties_top_first() {
        let s = IdleStack::new();
        s.push(3);
        s.push(7);
        assert_eq!(s.drain(), vec![7, 3]);
        assert!(s.is_empty());
    }
}
