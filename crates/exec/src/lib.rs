//! A real work-stealing executor on the verified runqueue path.
//!
//! The rest of this workspace schedules *abstract task words* — inside the
//! pure model, the simulators, or single-process balancing harnesses.  The
//! paper's complaint, though, is about schedulers in *real executions*:
//! idle cores coexisting with overloaded runqueues while actual work
//! waits.  This crate closes that gap.  [`Executor`] runs one OS worker
//! thread per CPU of a [`sched_topology::MachineTopology`], each owning a
//! lock-free [`sched_rq::DequeRq`] (Chase–Lev ring + shared overflow
//! injector), with:
//!
//! * **spawn/join** — closures become task words on real runqueues, get
//!   placed by [`sched_core::ChoicePolicy::place_wakeup`], migrate through
//!   batched CAS steals, and run wherever a worker claims them;
//! * **parking/unparking** — idle workers park on per-worker tokens,
//!   registered on a last-parked-first-woken idle stack, with a global
//!   `searching` counter bounding wakeup storms (see [`parker`] and the
//!   protocol walk-through in [`executor`]);
//! * **tracing** — every steal decision goes through the same
//!   [`sched_rq::steal::StealRecorder`] program point as the other
//!   substrates, so `stats == fold(trace)` parity holds on real threads;
//! * **an open-loop load generator** ([`openloop`]) — seeded Poisson
//!   arrivals with fixed/exponential/bimodal service mixes, measuring
//!   wall-clock end-to-end latency into a [`sched_metrics::Histogram`]
//!   (the `e2e_p99_us`/`e2e_p999_us` fields of the benchmark records).

#![warn(missing_docs)]

pub mod executor;
pub mod openloop;
pub mod parker;

pub use executor::{ExecConfig, ExecReport, Executor, JoinHandle};
pub use openloop::{drive, Arrival, ArrivalStream, OpenLoopReport, OpenLoopSpec, ServiceMix};
pub use parker::{IdleStack, Parker};
