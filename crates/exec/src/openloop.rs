//! The open-loop load generator: Poisson arrivals, seeded service mixes.
//!
//! Closed-loop harnesses (a fixed pool of callers, each waiting for its
//! previous request) hide latency problems by construction: when the
//! system slows down the offered load politely slows down with it, so the
//! queues never reveal the knee.  An *open-loop* generator submits on a
//! schedule that does not care how the executor is doing — arrivals are a
//! Poisson process at a configured rate, exactly like independent users —
//! so when service falls behind, queueing delay shows up undiluted in the
//! measured end-to-end latency.  That is the methodology the latency
//! ladder (`e26`) sweeps toward saturation.
//!
//! Everything is deterministic given the seed: the arrival timestamps and
//! the per-request service times come from one splitmix64 stream, so a
//! scenario replays the identical request schedule on every run (the
//! *submission* schedule, that is — wall-clock jitter in when those
//! submissions land is the operating system's to add).

use std::time::{Duration, Instant};

use crate::executor::Executor;

/// The per-request service-time distribution of an open-loop run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceMix {
    /// Every request costs exactly `ns` nanoseconds of spinning.
    Fixed {
        /// Service time of every request.
        ns: u64,
    },
    /// Exponentially distributed service times with the given mean — the
    /// classic M/M/c shape.
    Exp {
        /// Mean service time.
        mean_ns: u64,
    },
    /// A short/long mixture: `long_pct` percent of requests cost
    /// `long_ns`, the rest cost `short_ns` — the mice-and-elephants shape
    /// that makes tail latency interesting.
    Bimodal {
        /// Service time of the common, short requests.
        short_ns: u64,
        /// Service time of the rare, long requests.
        long_ns: u64,
        /// Percentage (0–100) of requests that are long.
        long_pct: u8,
    },
}

impl ServiceMix {
    /// Samples one service time from the mix using `u` (a uniform draw).
    fn sample(&self, u: u64) -> u64 {
        match *self {
            ServiceMix::Fixed { ns } => ns,
            ServiceMix::Exp { mean_ns } => {
                // Inverse CDF: -ln(u) * mean, u uniform in (0, 1].
                let x = (-unit_open(u).ln()) * mean_ns as f64;
                x.min(u64::MAX as f64) as u64
            }
            ServiceMix::Bimodal { short_ns, long_ns, long_pct } => {
                if u % 100 < u64::from(long_pct.min(100)) {
                    long_ns
                } else {
                    short_ns
                }
            }
        }
    }

    /// Mean service time of the mix, in nanoseconds (exact for fixed and
    /// exponential, the weighted average for bimodal).
    pub fn mean_ns(&self) -> u64 {
        match *self {
            ServiceMix::Fixed { ns } => ns,
            ServiceMix::Exp { mean_ns } => mean_ns,
            ServiceMix::Bimodal { short_ns, long_ns, long_pct } => {
                let pct = u64::from(long_pct.min(100));
                (long_ns * pct + short_ns * (100 - pct)) / 100
            }
        }
    }
}

/// One open-loop run: who arrives when, costing what, for how long.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenLoopSpec {
    /// Mean arrival rate, requests per second.
    pub rate_hz: u64,
    /// Horizon of the arrival schedule, in milliseconds.
    pub duration_ms: u64,
    /// Per-request service-time distribution.
    pub service: ServiceMix,
    /// Seed of the arrival/service stream.
    pub seed: u64,
}

impl OpenLoopSpec {
    /// The deterministic arrival schedule this spec describes.
    pub fn arrivals(&self) -> ArrivalStream {
        ArrivalStream {
            state: self.seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            next_at_ns: 0.0,
            gap_ns: 1e9 / (self.rate_hz.max(1) as f64),
            horizon_ns: self.duration_ms.saturating_mul(1_000_000),
            service: self.service,
        }
    }

    /// Offered load in service-seconds per second (ρ for one worker;
    /// divide by the worker count for the per-core utilisation).
    pub fn offered_load(&self) -> f64 {
        self.rate_hz as f64 * self.service.mean_ns() as f64 / 1e9
    }
}

/// Maps a raw 64-bit draw onto a uniform float in the open-closed unit
/// interval (never zero, so `ln` is always finite).
fn unit_open(u: u64) -> f64 {
    ((u >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

/// One scheduled request: when it arrives and what it costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival time, nanoseconds from the start of the run.
    pub at_ns: u64,
    /// Sampled service time.
    pub service_ns: u64,
}

/// The seeded, deterministic request schedule of an [`OpenLoopSpec`].
///
/// Iterating yields [`Arrival`]s in time order until the horizon; the
/// sequence depends only on the spec (same seed ⇒ same schedule, bit for
/// bit), which the generator proptests pin.
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    state: u64,
    next_at_ns: f64,
    gap_ns: f64,
    horizon_ns: u64,
    service: ServiceMix,
}

impl ArrivalStream {
    /// splitmix64, matching the repo's other seeded streams.
    fn next_u64(&mut self) -> u64 {
        let mut z = self.state;
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Iterator for ArrivalStream {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        // Poisson process: exponential inter-arrival gaps at the mean rate.
        let gap = -unit_open(self.next_u64()).ln() * self.gap_ns;
        self.next_at_ns += gap;
        let at_ns = self.next_at_ns as u64;
        if at_ns >= self.horizon_ns {
            return None;
        }
        let draw = self.next_u64();
        let service_ns = self.service.sample(draw);
        Some(Arrival { at_ns, service_ns })
    }
}

/// What an open-loop run submitted, as observed by the generator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpenLoopReport {
    /// Requests submitted to the executor.
    pub submitted: u64,
    /// Wall-clock length of the submission phase, nanoseconds.
    pub wall_ns: u64,
}

/// Drives `spec`'s arrival schedule into `exec` in real time.
///
/// The generator sleeps until each arrival's timestamp and submits it,
/// *never* waiting for completions — that is the open-loop contract.  If
/// the clock has already passed a batch of arrivals (sleep overshoot, or
/// an executor hogging every core of a small machine), they are submitted
/// back to back; their queueing delay is real and belongs in the
/// measurement.  Returns once the schedule is exhausted, without draining:
/// callers decide whether to wait for the queues to empty
/// ([`Executor::drain`]) before reading the latency histogram.
pub fn drive(exec: &Executor, spec: OpenLoopSpec) -> OpenLoopReport {
    let start = Instant::now();
    let mut report = OpenLoopReport::default();
    for arrival in spec.arrivals() {
        let due = Duration::from_nanos(arrival.at_ns);
        loop {
            let elapsed = start.elapsed();
            if elapsed >= due {
                break;
            }
            // Sleep in one go: the OS may overshoot, which for an
            // open-loop generator is fine — late submissions queue up.
            std::thread::sleep(due - elapsed);
        }
        exec.submit_request(arrival.service_ns);
        report.submitted += 1;
    }
    report.wall_ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(rate_hz: u64, duration_ms: u64, service: ServiceMix, seed: u64) -> OpenLoopSpec {
        OpenLoopSpec { rate_hz, duration_ms, service, seed }
    }

    #[test]
    fn arrivals_are_time_ordered_and_bounded_by_the_horizon() {
        let s = spec(50_000, 20, ServiceMix::Fixed { ns: 1_000 }, 7);
        let mut last = 0;
        for a in s.arrivals() {
            assert!(a.at_ns >= last, "arrivals must be sorted");
            assert!(a.at_ns < 20_000_000, "horizon is 20 ms");
            last = a.at_ns;
        }
    }

    #[test]
    fn the_bimodal_mix_yields_exactly_its_two_modes() {
        let s = spec(
            100_000,
            50,
            ServiceMix::Bimodal { short_ns: 500, long_ns: 9_000, long_pct: 10 },
            42,
        );
        let arrivals: Vec<Arrival> = s.arrivals().collect();
        assert!(!arrivals.is_empty());
        let long = arrivals.iter().filter(|a| a.service_ns == 9_000).count();
        let short = arrivals.iter().filter(|a| a.service_ns == 500).count();
        assert_eq!(long + short, arrivals.len(), "no third mode exists");
        let long_share = long as f64 / arrivals.len() as f64;
        assert!((0.05..0.2).contains(&long_share), "~10% long, got {long_share}");
    }

    #[test]
    fn offered_load_is_rate_times_mean_service() {
        let s = spec(10_000, 100, ServiceMix::Fixed { ns: 50_000 }, 1);
        assert!((s.offered_load() - 0.5).abs() < 1e-9);
        let mix = ServiceMix::Bimodal { short_ns: 1_000, long_ns: 11_000, long_pct: 50 };
        assert_eq!(mix.mean_ns(), 6_000);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Satellite: same seed ⇒ bit-identical schedule.
            #[test]
            fn streams_are_seed_deterministic(
                seed in any::<u64>(),
                rate in 1_000u64..200_000,
                mean in 100u64..100_000,
            ) {
                let s = spec(rate, 50, ServiceMix::Exp { mean_ns: mean }, seed);
                let a: Vec<Arrival> = s.arrivals().collect();
                let b: Vec<Arrival> = s.arrivals().collect();
                prop_assert_eq!(a, b);
            }

            /// Satellite: different seeds ⇒ different schedules (the seed
            /// actually reaches the stream).
            #[test]
            fn the_seed_moves_the_schedule(seed in any::<u64>()) {
                let a: Vec<Arrival> =
                    spec(50_000, 20, ServiceMix::Exp { mean_ns: 1_000 }, seed).arrivals().collect();
                let b: Vec<Arrival> =
                    spec(50_000, 20, ServiceMix::Exp { mean_ns: 1_000 }, seed ^ 1).arrivals().collect();
                prop_assert_ne!(a, b);
            }

            /// Satellite: over a long horizon the realised rate converges
            /// on the configured one (Poisson counts concentrate: at the
            /// smallest expectation here, n = 1000·0.5 = 500, five standard
            /// deviations are ~11% of the mean).
            #[test]
            fn the_realised_rate_matches_the_configured_rate(
                seed in any::<u64>(),
                rate in 500u64..50_000,
            ) {
                let horizon_ms = 1_000u64;
                let s = spec(rate, horizon_ms, ServiceMix::Fixed { ns: 100 }, seed);
                let n = s.arrivals().count() as f64;
                let expected = rate as f64 * horizon_ms as f64 / 1e3;
                let tolerance = 5.0 * expected.sqrt();
                prop_assert!(
                    (n - expected).abs() <= tolerance,
                    "saw {} arrivals, expected {} ± {}", n, expected, tolerance
                );
            }

            /// Satellite: service mixes reproduce exactly across runs and
            /// every sampled value is legal for its mix.
            #[test]
            fn service_mixes_are_exactly_reproducible(
                seed in any::<u64>(),
                short in 100u64..5_000,
                spread in 1u64..50_000,
                pct in 0u8..=100,
            ) {
                let mix = ServiceMix::Bimodal { short_ns: short, long_ns: short + spread, long_pct: pct };
                let s = spec(20_000, 50, mix, seed);
                let a: Vec<u64> = s.arrivals().map(|x| x.service_ns).collect();
                let b: Vec<u64> = s.arrivals().map(|x| x.service_ns).collect();
                prop_assert_eq!(&a, &b);
                for v in a {
                    prop_assert!(v == short || v == short + spread);
                }
            }

            /// The exponential sampler hits its mean within tolerance.
            #[test]
            fn exponential_services_average_their_mean(seed in any::<u64>()) {
                let mean = 10_000u64;
                let s = spec(50_000, 400, ServiceMix::Exp { mean_ns: mean }, seed);
                let services: Vec<u64> = s.arrivals().map(|a| a.service_ns).collect();
                prop_assume!(services.len() > 1_000);
                let avg = services.iter().sum::<u64>() as f64 / services.len() as f64;
                // Exponential: σ = mean, so 5σ/√n of slack.
                let tolerance = 5.0 * mean as f64 / (services.len() as f64).sqrt();
                prop_assert!(
                    (avg - mean as f64).abs() <= tolerance,
                    "mean {} vs configured {} ± {}", avg, mean, tolerance
                );
            }
        }
    }
}
