//! The work-stealing executor: OS threads over the verified runqueues.
//!
//! Everything below this crate schedules *abstract task words*; this module
//! finally makes them real.  An [`Executor`] spawns one OS worker thread
//! per CPU of a [`MachineTopology`], each owning a lock-free
//! [`DequeRq`] (Chase–Lev ring plus the shared overflow injector), and runs
//! submitted jobs through exactly the machinery the rest of the repository
//! verifies: wakeup placement via [`sched_core::ChoicePolicy::place_wakeup`],
//! batched CAS stealing via [`DequeRq::try_steal_recorded`] with the same
//! [`StealRecorder`] program point the `stats == fold(trace)` parity proofs
//! rely on, and per-decision tracing through [`sched_trace`].
//!
//! # The worker loop
//!
//! ```text
//!          ┌────────────────────────────────────────────────┐
//!          ▼                                                │
//!   run own core ──empty──▶ steal (searching++) ──stole──▶──┤
//!   (current/ring/                  │                       │
//!    injector)                   nothing                    │
//!          ▲                        ▼                       │
//!          │              register on idle stack            │
//!          │                        │                       │
//!          │               re-check own queue ──work──▶─────┘
//!          │                        │
//!          │                      empty
//!          │                        ▼
//!          └──token/timeout──  park (blocked)
//! ```
//!
//! # Parking protocol
//!
//! Idle workers park on a per-worker token [`Parker`] and register on a
//! shared [`IdleStack`] (last parked, first woken).  Producers wake the
//! *specific* worker whose runqueue just received a task if it is parked;
//! otherwise, if no worker is currently searching for work (the global
//! `searching` counter), they pop one parked worker to go steal.  Bounding
//! undirected wakeups by `searching == 0` is what prevents wakeup storms:
//! one submission wakes at most one thief, and a thief that finds work
//! will wake the next one through its own submissions' completions.  The
//! register → re-check → block ordering closes the classic lost-wakeup
//! race (see [`crate::parker`]); a short timed backstop on the park makes
//! even a missed edge self-heal.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use sched_core::{CoreId, CoreSnapshot, Policy, StealOutcome, TaskId};
use sched_metrics::Histogram;
use sched_rq::steal::StealRecorder;
use sched_rq::{BalanceStats, DequeRq, RqBackend, RqTask, StealBatch};
use sched_topology::MachineTopology;
use sched_trace::{TraceEvent, TraceSink};

use crate::parker::{IdleStack, Parker};

/// Fallback park duration: a parked worker re-checks the world this often
/// even if no token arrives.  Purely a backstop — the token protocol is
/// what wakes workers — but it turns any missed edge (or a descheduled
/// producer on an oversubscribed machine) into bounded latency instead of
/// a hang.
const PARK_BACKSTOP: Duration = Duration::from_millis(2);

/// Number of job-table shards; a power of two so the modulo is a mask.
const JOB_SHARDS: usize = 16;

/// How the executor is built: machine shape, policy, and knobs.
#[derive(Debug)]
pub struct ExecConfig {
    /// One worker (and one runqueue) per CPU of this machine.
    pub topo: Arc<MachineTopology>,
    /// The balancing policy: its filter/choice drive stealing, its
    /// [`sched_core::ChoicePolicy::place_wakeup`] drives submission placement, and its
    /// tracker maintains the loads both read.
    pub policy: Policy,
    /// Claim size of one steal decision.
    pub batch: StealBatch,
    /// Capacity of each worker's ring (overflow spills to the shared
    /// injector, so this bounds memory, not admission).
    pub ring_capacity: usize,
    /// Decision trace sink; keep a clone to drain it after shutdown.
    pub trace: TraceSink,
}

impl ExecConfig {
    /// A configuration with the default ring capacity, one-task steals and
    /// no tracing.
    pub fn new(topo: Arc<MachineTopology>, policy: Policy) -> Self {
        ExecConfig {
            topo,
            policy,
            batch: StealBatch::One,
            ring_capacity: 1024,
            trace: TraceSink::disabled(),
        }
    }

    /// Sets the steal batch size.
    pub fn with_batch(mut self, batch: StealBatch) -> Self {
        self.batch = batch;
        self
    }

    /// Attaches a decision trace sink.
    pub fn with_trace(mut self, trace: TraceSink) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the per-worker ring capacity.
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }
}

/// What one submitted task actually does when a worker runs it.
enum Job {
    /// Run a closure (the `spawn` API).
    Closure(Box<dyn FnOnce() + Send + 'static>),
    /// Spin for a sampled service time and record the end-to-end latency
    /// since submission (the open-loop benchmark API).
    Request {
        /// Nanoseconds of CPU to burn.
        service_ns: u64,
        /// Submission time, nanoseconds since the executor started.
        submitted_ns: u64,
    },
}

/// The id → job side table.  Runqueues carry task *words* (id, nice); the
/// payload rides here, inserted before the enqueue so a worker that claims
/// the id always finds it.
struct JobTable {
    shards: Vec<Mutex<HashMap<u64, Job>>>,
}

impl JobTable {
    fn new() -> Self {
        JobTable { shards: (0..JOB_SHARDS).map(|_| Mutex::new(HashMap::new())).collect() }
    }

    fn insert(&self, id: u64, job: Job) {
        let mut shard = self.shards[id as usize % JOB_SHARDS].lock().expect("job shard poisoned");
        shard.insert(id, job);
    }

    fn take(&self, id: u64) -> Option<Job> {
        let mut shard = self.shards[id as usize % JOB_SHARDS].lock().expect("job shard poisoned");
        shard.remove(&id)
    }
}

/// One spawned job's result slot (see [`Executor::spawn`]).
struct JoinCell<T> {
    slot: Mutex<Option<T>>,
    done: Condvar,
}

/// Waits for one spawned closure's result.
pub struct JoinHandle<T> {
    cell: Arc<JoinCell<T>>,
}

impl<T> JoinHandle<T> {
    /// Blocks until the job has run and returns its result.
    pub fn join(self) -> T {
        let mut slot = self.cell.slot.lock().expect("join cell poisoned");
        loop {
            match slot.take() {
                Some(out) => return out,
                None => slot = self.cell.done.wait(slot).expect("join cell poisoned"),
            }
        }
    }

    /// `true` once the job has completed (non-blocking).
    pub fn is_finished(&self) -> bool {
        self.cell.slot.lock().expect("join cell poisoned").is_some()
    }
}

/// Everything the worker threads share.
struct Shared {
    cores: Vec<DequeRq>,
    policy: Policy,
    batch: StealBatch,
    topo: Arc<MachineTopology>,
    /// Logical machine clock in nanoseconds since `start`; workers and
    /// producers advance it with `fetch_max` so it never goes backwards.
    clock: Arc<AtomicU64>,
    start: Instant,
    stats: BalanceStats,
    trace: TraceSink,
    jobs: JobTable,
    parkers: Vec<Parker>,
    idle: IdleStack,
    /// Workers currently in their stealing phase; producers skip the
    /// undirected wakeup while this is nonzero (storm bound).
    searching: AtomicUsize,
    /// Jobs submitted and not yet completed.
    pending: AtomicU64,
    shutdown: AtomicBool,
    next_task: AtomicU64,
    /// Round-robin previous-core hint for submissions from outside the
    /// executor (a fresh request has no meaningful "previous core").
    rr: AtomicUsize,
    /// Per-worker latency histograms merge here as workers exit.
    latency: Mutex<Histogram>,
    completed: AtomicU64,
}

impl Shared {
    fn now_wall_ns(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    /// Advances the logical clock to wall time and publishes it to the
    /// trace, so events across workers are stamped on one timeline.
    fn advance_clock(&self) -> u64 {
        let now = self.now_wall_ns();
        self.clock.fetch_max(now, Ordering::AcqRel);
        self.trace.set_now(now);
        now
    }

    fn now_ns(&self) -> u64 {
        self.clock.load(Ordering::Acquire)
    }

    fn should_exit(&self) -> bool {
        self.shutdown.load(Ordering::Acquire) && self.pending.load(Ordering::Acquire) == 0
    }

    /// Wakes whoever should handle a task just seated on `target`'s queue:
    /// the target's own worker if it is parked, else — when nobody is
    /// already out stealing — the most recently parked worker to go steal.
    fn notify(&self, target: usize) {
        if self.idle.pop_specific(target) {
            self.parkers[target].unpark();
            return;
        }
        if self.searching.load(Ordering::Acquire) == 0 {
            if let Some(worker) = self.idle.pop_any() {
                self.parkers[worker].unpark();
            }
        }
    }

    /// One three-step balancing operation for `thief` — the same
    /// selection/steal split as `MultiQueue::balance_once_batched`, with
    /// the outcome counted and traced through the shared [`StealRecorder`]
    /// program point (which is what keeps `stats == fold(trace)` exact for
    /// this substrate too).
    fn balance_once(&self, thief: CoreId) -> StealOutcome {
        let snapshots: Vec<CoreSnapshot> = self.cores.iter().map(DequeRq::snapshot).collect();
        let thief_snap = snapshots[thief.0];
        let candidates: Vec<CoreSnapshot> = snapshots
            .into_iter()
            .filter(|s| s.id != thief && self.policy.filter.can_steal(&thief_snap, s))
            .collect();
        let Some(victim) = self.policy.choice.choose(&thief_snap, &candidates) else {
            self.stats.record(&StealOutcome::NoCandidates);
            if self.trace.is_enabled() {
                self.trace.record(
                    thief,
                    self.now_ns(),
                    &TraceEvent::steal_attempt(&StealOutcome::NoCandidates, None, 1),
                );
            }
            return StealOutcome::NoCandidates;
        };
        let victim_snap = candidates.iter().find(|s| s.id == victim).expect("choice membership");
        let max_tasks = self.batch.size(&self.policy, &thief_snap, victim_snap);
        let level = self.topo.steal_level(thief, victim);
        let outcome = DequeRq::try_steal_recorded(
            &self.cores[thief.0],
            &self.cores[victim.0],
            self.policy.filter.as_ref(),
            max_tasks,
            Some(StealRecorder::new(&self.stats, Some(level)).with_trace(
                &self.trace,
                thief,
                self.now_ns(),
            )),
        );
        self.policy.choice.observe(thief, victim, outcome.is_success());
        outcome
    }

    /// Runs one claimed task to completion on worker `me`.
    fn execute(&self, task: TaskId, me: usize, latency: &mut Histogram) {
        match self.jobs.take(task.0) {
            Some(Job::Closure(f)) => f(),
            Some(Job::Request { service_ns, submitted_ns }) => {
                spin_for(service_ns);
                let e2e_ns = self.now_wall_ns().saturating_sub(submitted_ns);
                latency.record(e2e_ns / 1_000);
            }
            // Jobs are inserted before their id is enqueued, so a claimed
            // id always resolves; tolerate (and count) a miss anyway
            // rather than poisoning the worker.
            None => debug_assert!(false, "task {task:?} has no job"),
        }
        if self.trace.is_enabled() {
            self.trace.record(CoreId(me), self.now_ns(), &TraceEvent::TaskDone { task });
        }
        let removed = self.cores[me].complete_current();
        debug_assert_eq!(removed.as_ref().map(|t| t.id), Some(task));
        self.completed.fetch_add(1, Ordering::Relaxed);
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 && self.shutdown.load(Ordering::Acquire)
        {
            // Last job out during shutdown: wake everyone so they observe
            // `should_exit` and leave.
            for worker in self.idle.drain() {
                self.parkers[worker].unpark();
            }
        }
    }

    /// The body of one worker thread.
    fn worker_loop(&self, me: usize) {
        let rq = &self.cores[me];
        let mut latency = Histogram::new();
        loop {
            self.advance_clock();
            rq.refresh();
            // Run everything reachable from the own core: the seated task
            // (a wakeup may have claimed the idle core directly), then
            // ring and injector via `pick_next`.
            while let Some(task) = rq.current_task().or_else(|| rq.pick_next()) {
                self.execute(task, me, &mut latency);
                self.advance_clock();
            }
            // Own sources empty: go stealing.  The `searching` counter is
            // up only around the attempt — producers seeing it nonzero
            // trust this thief to find their work.
            self.searching.fetch_add(1, Ordering::AcqRel);
            let outcome = self.balance_once(CoreId(me));
            self.searching.fetch_sub(1, Ordering::AcqRel);
            if outcome.is_success() {
                continue;
            }
            if self.should_exit() {
                break;
            }
            // Register → re-check → block.  A producer enqueueing after
            // the re-check sees the registration and deposits the token.
            self.idle.push(me);
            if !rq.snapshot().is_idle() || rq.injected_len() > 0 || self.should_exit() {
                if !self.idle.remove(me) {
                    // A producer popped us concurrently and deposited a
                    // token; consume it so it cannot ghost-wake a later
                    // park.
                    self.parkers[me].park_timeout(Duration::ZERO);
                }
                continue;
            }
            self.trace.record(CoreId(me), self.now_ns(), &TraceEvent::Park);
            let woken = self.parkers[me].park_timeout(PARK_BACKSTOP);
            if !woken && !self.idle.remove(me) {
                // Timed out, but a producer popped us in the window before
                // the deregistration — its token is deposited; eat it.
                self.parkers[me].park_timeout(Duration::ZERO);
            }
            self.advance_clock();
            self.trace.record(CoreId(me), self.now_ns(), &TraceEvent::Unpark);
        }
        self.latency.lock().expect("latency histogram poisoned").merge(&latency);
    }
}

/// Burns roughly `ns` nanoseconds of CPU (the "service" of a benchmark
/// request).  Spinning, not sleeping: a request occupies its core exactly
/// the way real work would, which is what makes the measured queueing
/// delays honest.
fn spin_for(ns: u64) {
    let end = Instant::now() + Duration::from_nanos(ns);
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

/// Everything a finished run measured, returned by [`Executor::shutdown`].
#[derive(Debug)]
pub struct ExecReport {
    /// End-to-end request latency (submission → completion), microseconds.
    pub latency_us: Histogram,
    /// Jobs completed over the executor's lifetime.
    pub completed: u64,
    /// The balancing counters of the run (steals, failures, migrations,
    /// per-level attribution) — fold the drained trace to reproduce them.
    pub stats: BalanceStats,
}

/// The work-stealing executor (see the module docs).
pub struct Executor {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Executor {
    /// Builds the runqueues and spawns one worker thread per CPU of the
    /// configured topology.
    pub fn start(config: ExecConfig) -> Self {
        let ExecConfig { topo, policy, batch, ring_capacity, trace } = config;
        let clock = Arc::new(AtomicU64::new(0));
        let cores: Vec<DequeRq> = topo
            .cpus()
            .iter()
            .map(|c| {
                let mut rq = DequeRq::with_queue_capacity(
                    c.id,
                    c.node,
                    Arc::clone(&policy.tracker),
                    Arc::clone(&clock),
                    ring_capacity,
                );
                rq.attach_trace(trace.clone());
                rq
            })
            .collect();
        let nr_workers = cores.len();
        let shared = Arc::new(Shared {
            cores,
            policy,
            batch,
            topo,
            clock,
            start: Instant::now(),
            stats: BalanceStats::new(),
            trace,
            jobs: JobTable::new(),
            parkers: (0..nr_workers).map(|_| Parker::new()).collect(),
            idle: IdleStack::new(),
            searching: AtomicUsize::new(0),
            pending: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            next_task: AtomicU64::new(0),
            rr: AtomicUsize::new(0),
            latency: Mutex::new(Histogram::new()),
            completed: AtomicU64::new(0),
        });
        let workers = (0..nr_workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sched-exec-{me}"))
                    .spawn(move || shared.worker_loop(me))
                    .expect("spawning a worker thread")
            })
            .collect();
        Executor { shared, workers }
    }

    /// Number of worker threads (= CPUs of the configured topology).
    pub fn nr_workers(&self) -> usize {
        self.shared.cores.len()
    }

    /// Submits a closure and returns a handle to its result.
    ///
    /// The closure becomes a task word on a real runqueue: it is placed by
    /// the policy's [`sched_core::ChoicePolicy::place_wakeup`], may be stolen between
    /// cores before it runs, and executes on whichever worker claims it.
    pub fn spawn<F, T>(&self, f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let cell = Arc::new(JoinCell { slot: Mutex::new(None), done: Condvar::new() });
        let out = Arc::clone(&cell);
        self.submit_job(Job::Closure(Box::new(move || {
            let result = f();
            *out.slot.lock().expect("join cell poisoned") = Some(result);
            out.done.notify_all();
        })));
        JoinHandle { cell }
    }

    /// Submits one open-loop benchmark request costing `service_ns` of
    /// CPU; its end-to-end latency (now → completion) lands in the
    /// report's histogram.
    pub fn submit_request(&self, service_ns: u64) {
        let submitted_ns = self.shared.now_wall_ns();
        self.submit_job(Job::Request { service_ns, submitted_ns });
    }

    fn submit_job(&self, job: Job) -> TaskId {
        let shared = &self.shared;
        let id = TaskId(shared.next_task.fetch_add(1, Ordering::Relaxed));
        shared.pending.fetch_add(1, Ordering::AcqRel);
        shared.jobs.insert(id.0, job);
        // Place the wakeup: the policy reads the same lock-less snapshots
        // the stealing side does.  External submissions have no meaningful
        // previous core, so a rotating hint spreads the "prev is idle"
        // fast path instead of herding everything onto core 0.
        let prev = CoreId(shared.rr.fetch_add(1, Ordering::Relaxed) % shared.cores.len());
        let snapshots: Vec<CoreSnapshot> = shared.cores.iter().map(DequeRq::snapshot).collect();
        let target = shared.policy.choice.place_wakeup(prev, &snapshots).unwrap_or(prev);
        let now = shared.advance_clock();
        if shared.trace.is_enabled() {
            shared.trace.record(target, now, &TraceEvent::TaskWake { task: id });
            shared.trace.record(target, now, &TraceEvent::PlaceDecision { task: id, core: target });
        }
        shared.cores[target.0].enqueue(RqTask::new(id));
        shared.notify(target.0);
        id
    }

    /// Blocks until every submitted job has completed.  Open-loop runs
    /// call this after the generator finishes so the histogram covers the
    /// whole schedule, including the backlog.
    pub fn drain(&self) {
        while self.shared.pending.load(Ordering::Acquire) > 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Jobs completed so far.
    pub fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::Relaxed)
    }

    /// The run's balancing counters (live; also returned by value in the
    /// final [`ExecReport`]).
    pub fn stats(&self) -> &BalanceStats {
        &self.shared.stats
    }

    /// Lock-less snapshots of every worker's runqueue, in id order.
    pub fn snapshots(&self) -> Vec<CoreSnapshot> {
        self.shared.cores.iter().map(DequeRq::snapshot).collect()
    }

    /// Stops accepting progress, waits for the queues to empty, joins all
    /// workers, and returns what the run measured.
    pub fn shutdown(self) -> ExecReport {
        self.shared.shutdown.store(true, Ordering::Release);
        for worker in self.shared.idle.drain() {
            self.shared.parkers[worker].unpark();
        }
        // Belt and braces: a worker may have been between the drain and
        // its own park registration.
        for parker in &self.shared.parkers {
            parker.unpark();
        }
        for handle in self.workers {
            handle.join().expect("worker thread panicked");
        }
        let shared = &self.shared;
        let stats = BalanceStats::new();
        stats.merge_from(&shared.stats);
        ExecReport {
            latency_us: shared.latency.lock().expect("latency histogram poisoned").clone(),
            completed: shared.completed.load(Ordering::Relaxed),
            stats,
        }
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("workers", &self.workers.len())
            .field("pending", &self.shared.pending.load(Ordering::Relaxed))
            .field("completed", &self.shared.completed.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::openloop::{drive, OpenLoopSpec, ServiceMix};
    use sched_core::policy::TopologyAwareChoice;
    use sched_core::LoadMetric;
    use sched_topology::TopologyBuilder;
    use sched_trace::FoldedStats;

    fn small_topo() -> Arc<MachineTopology> {
        Arc::new(TopologyBuilder::new().sockets(1).cores_per_socket(4).llcs_per_socket(1).build())
    }

    fn exec_policy(topo: &Arc<MachineTopology>) -> Policy {
        Policy::simple().with_choice(Box::new(TopologyAwareChoice::new(
            Arc::clone(topo),
            LoadMetric::NrThreads,
        )))
    }

    fn start(trace: TraceSink) -> Executor {
        let topo = small_topo();
        let policy = exec_policy(&topo);
        Executor::start(ExecConfig::new(topo, policy).with_trace(trace))
    }

    #[test]
    fn spawned_closures_run_and_join() {
        let exec = start(TraceSink::disabled());
        let handles: Vec<JoinHandle<u64>> = (0..64u64).map(|i| exec.spawn(move || i * 2)).collect();
        let sum: u64 = handles.into_iter().map(JoinHandle::join).sum();
        assert_eq!(sum, (0..64u64).map(|i| i * 2).sum());
        let report = exec.shutdown();
        assert_eq!(report.completed, 64);
    }

    #[test]
    fn requests_measure_end_to_end_latency() {
        let exec = start(TraceSink::disabled());
        for _ in 0..32 {
            exec.submit_request(5_000);
        }
        exec.drain();
        let report = exec.shutdown();
        assert_eq!(report.completed, 32);
        assert_eq!(report.latency_us.count(), 32);
        // 5 µs of service: every measured latency is at least that, minus
        // the µs-truncation of sub-microsecond parts.
        assert!(report.latency_us.max() >= 4);
    }

    #[test]
    fn an_open_loop_run_completes_its_schedule() {
        let exec = start(TraceSink::disabled());
        let spec = OpenLoopSpec {
            rate_hz: 4_000,
            duration_ms: 50,
            service: ServiceMix::Fixed { ns: 2_000 },
            seed: 7,
        };
        let report = drive(&exec, spec);
        assert!(report.submitted > 0);
        exec.drain();
        let summary = exec.shutdown();
        assert_eq!(summary.completed, report.submitted);
        assert_eq!(summary.latency_us.count(), report.submitted);
    }

    #[test]
    fn stats_equal_folded_trace() {
        // The executor parity leg: every steal decision the workers make
        // is recorded through the same StealRecorder program point the
        // counters move through, so folding the drained trace reproduces
        // the stats exactly — on real OS threads, not a simulator.
        let sink = TraceSink::with_capacity(4, 1 << 16);
        let exec = start(sink.clone());
        let spec = OpenLoopSpec {
            rate_hz: 3_000,
            duration_ms: 60,
            service: ServiceMix::Exp { mean_ns: 4_000 },
            seed: 11,
        };
        drive(&exec, spec);
        exec.drain();
        let report = exec.shutdown();
        let trace = sink.drain();
        assert_eq!(trace.dropped, 0, "size the rings so the parity check sees everything");
        let folded = FoldedStats::from_trace(&trace);
        assert_eq!(folded.successes, report.stats.successes());
        assert_eq!(folded.recheck_failures, report.stats.recheck_failures());
        assert_eq!(folded.nothing_to_steal, report.stats.nothing_to_steal());
        assert_eq!(folded.no_candidates, report.stats.no_candidates());
        assert_eq!(folded.migrations, report.stats.migrations());
        assert_eq!(folded.level_migrations, report.stats.level_migration_counts());
    }

    #[test]
    fn an_idle_executor_shuts_down_promptly() {
        let exec = start(TraceSink::disabled());
        std::thread::sleep(Duration::from_millis(10));
        let report = exec.shutdown();
        assert_eq!(report.completed, 0);
    }

    // ---- stress legs (CI `exec-stress` job; `--ignored`) ----

    /// Park/unpark race hammer: repeated idle → burst → drain cycles drive
    /// every worker through the register/re-check/park edge while
    /// submissions race the registrations.  A lost wakeup shows up as a
    /// drain that takes the park backstop instead of the token path —
    /// or, if the protocol is truly broken, as a hang.
    #[test]
    #[ignore]
    fn park_unpark_races_never_strand_work() {
        let exec = start(TraceSink::disabled());
        for round in 0..200 {
            // Let everyone park.
            std::thread::sleep(Duration::from_millis(1));
            let handles: Vec<JoinHandle<usize>> = (0..16).map(|i| exec.spawn(move || i)).collect();
            let sum: usize = handles.into_iter().map(JoinHandle::join).sum();
            assert_eq!(sum, (0..16).sum::<usize>(), "round {round} lost a job");
        }
        exec.drain();
        let report = exec.shutdown();
        assert_eq!(report.completed, 200 * 16);
    }

    /// Concurrent submitters race the parking protocol from multiple
    /// threads at once (the single-producer case above cannot exercise
    /// producer/producer interleavings of the idle stack).
    #[test]
    #[ignore]
    fn concurrent_submitters_race_the_idle_stack() {
        let exec = Arc::new(start(TraceSink::disabled()));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let exec = Arc::clone(&exec);
                scope.spawn(move || {
                    for _ in 0..500 {
                        exec.submit_request(1_000);
                        std::thread::sleep(Duration::from_micros(50));
                    }
                });
            }
        });
        exec.drain();
        let report = Arc::into_inner(exec).expect("all submitters joined").shutdown();
        assert_eq!(report.completed, 4 * 500);
    }

    /// A short open-loop soak at a saturating rate: the executor must
    /// neither lose requests nor deadlock when the offered load exceeds
    /// the machine.
    #[test]
    #[ignore]
    fn open_loop_soak_survives_saturation() {
        let exec = start(TraceSink::disabled());
        let spec = OpenLoopSpec {
            rate_hz: 20_000,
            duration_ms: 500,
            service: ServiceMix::Bimodal { short_ns: 2_000, long_ns: 50_000, long_pct: 5 },
            seed: 3,
        };
        let report = drive(&exec, spec);
        exec.drain();
        let summary = exec.shutdown();
        assert_eq!(summary.completed, report.submitted);
        assert!(summary.latency_us.count() > 0);
    }
}
