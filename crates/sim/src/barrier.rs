//! Barrier synchronisation between simulated threads.

use crate::thread::SimThreadId;

/// One barrier: threads block in it until every participant has arrived,
/// then all are released together (and the barrier resets for reuse).
#[derive(Debug, Clone)]
pub struct SimBarrier {
    /// The barrier id used by workload phases.
    pub id: u32,
    /// Number of participants required to release the barrier.
    pub participants: usize,
    waiting: Vec<SimThreadId>,
}

impl SimBarrier {
    /// Creates a barrier for `participants` threads.
    pub fn new(id: u32, participants: usize) -> Self {
        assert!(participants > 0, "a barrier needs at least one participant");
        SimBarrier { id, participants, waiting: Vec::with_capacity(participants) }
    }

    /// Records that `tid` arrived at the barrier.
    ///
    /// Returns the full list of released threads if this arrival was the
    /// last one, or `None` if the barrier is still waiting.
    pub fn arrive(&mut self, tid: SimThreadId) -> Option<Vec<SimThreadId>> {
        debug_assert!(
            !self.waiting.contains(&tid),
            "a thread cannot wait twice at the same barrier"
        );
        self.waiting.push(tid);
        if self.waiting.len() == self.participants {
            Some(std::mem::take(&mut self.waiting))
        } else {
            None
        }
    }

    /// Number of threads currently waiting.
    pub fn nr_waiting(&self) -> usize {
        self.waiting.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn releases_when_the_last_participant_arrives() {
        let mut b = SimBarrier::new(0, 3);
        assert!(b.arrive(SimThreadId(0)).is_none());
        assert!(b.arrive(SimThreadId(1)).is_none());
        assert_eq!(b.nr_waiting(), 2);
        let released = b.arrive(SimThreadId(2)).unwrap();
        assert_eq!(released.len(), 3);
        assert_eq!(b.nr_waiting(), 0, "the barrier resets for the next iteration");
    }

    #[test]
    fn single_participant_barrier_releases_immediately() {
        let mut b = SimBarrier::new(0, 1);
        assert_eq!(b.arrive(SimThreadId(7)).unwrap(), vec![SimThreadId(7)]);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_is_rejected() {
        let _ = SimBarrier::new(0, 0);
    }
}
