//! The event-driven simulation engine: O(events) instead of O(cores × ticks).
//!
//! The tick engine ([`crate::engine::Engine`]) keeps every core on the
//! calendar: per-core preemption timers re-arm every timeslice whether or not
//! the core has anything to preempt, and every balance tick eagerly folds
//! every core's tracked load (`touch_all`).  A machine that is 99% asleep
//! still pays for 100% of its cores, which is exactly backwards for the
//! idle-while-overloaded scenarios the paper cares about.
//!
//! This engine runs the *same* simulation — same handlers, same scheduler
//! callbacks, same accounting totals — while only paying for cores that have
//! something to do:
//!
//! * **Timer elision** — a core's preemption timer is on the calendar only
//!   while the core is preemptible (someone running *and* someone waiting).
//!   Timers still fire on the tick engine's timeslice grid, so preemptions
//!   land at identical times.
//! * **Balance parking** — once a balance round finds the machine fully
//!   asleep (no queued threads, every tracked load decayed to zero, a no-op
//!   round), the machine-wide balance event leaves the calendar; the next
//!   wakeup re-schedules it on the next balance-grid point.  Every skipped
//!   round is provably a no-op, so the schedule is unchanged.
//! * **Lazy tracker decay** — instead of the O(cores) pre-balance
//!   `touch_all`, each core's tracked load is caught up on demand by
//!   replaying the balance-grid folds it missed
//!   ([`CoreQueues::catch_up`]; decay folds do not compose, so the replay
//!   is fold-for-fold).
//! * **O(1) idle accounting** — the tick engine charges every core on every
//!   event; here a global "some core is overloaded" time integral plus
//!   per-core change timestamps settle each core lazily, producing the same
//!   per-core busy / benign-idle / violating-idle totals.
//!
//! Under the default [`OrderingPolicy::Priority`] the two engines produce
//! bit-identical results (pinned by parity tests in `sched-bench`): ranks
//! order simultaneous events as balance, then wakeups in push order, then
//! timers in core order, which is engine-independent.  Exact FIFO parity is
//! impossible by construction — FIFO ties depend on push order, and eliding
//! a timer push renumbers every later event.  [`OrderingPolicy::Seeded`]
//! permutes same-time events instead and is the verification mode: sweeping
//! seeds explores alternative same-time schedules, with every run replayable
//! from its seed.
//!
//! [`OrderingPolicy::Priority`]: crate::event::OrderingPolicy::Priority
//! [`OrderingPolicy::Seeded`]: crate::event::OrderingPolicy::Seeded
//! [`CoreQueues::catch_up`]: crate::queues::CoreQueues::catch_up

use std::sync::Arc;

use sched_core::tracker::LoadTracker;
use sched_core::{CoreId, TaskId};
use sched_metrics::{IdleAccounting, LatencyRecorder};
use sched_topology::MachineTopology;
use sched_trace::{TraceEvent, TraceSink};
use sched_workloads::{Phase, Workload};

use crate::barrier::SimBarrier;
use crate::config::SimConfig;
use crate::event::{Event, EventKind, EventQueue};
use crate::queues::CoreQueues;
use crate::result::SimResult;
use crate::scheduler::{RoundStats, SimScheduler};
use crate::thread::{SimThread, SimThreadId, ThreadState};

/// Per-core bookkeeping the event engine keeps off the calendar.
#[derive(Debug, Clone)]
struct CoreMeta {
    /// A preemption timer for this core is currently on the calendar.
    timer_armed: bool,
    /// Time this core's timer last fired; guards against arming a second
    /// timer at a timestamp whose timer already fired.  `u64::MAX` = never.
    last_timer_fired_ns: u64,
    /// When the core's idle/busy status last changed (accounting settled).
    last_change_ns: u64,
    /// Idle status over `[last_change_ns, now)`.
    was_idle: bool,
    /// Overload status as currently folded into `nr_overloaded`.
    was_overloaded: bool,
    /// Value of the violation integral at `last_change_ns`.
    v_snapshot: u64,
}

/// The event-driven simulator.  Construction and results are drop-in
/// compatible with [`crate::engine::Engine`].
pub struct EventEngine {
    config: SimConfig,
    queues: CoreQueues,
    threads: Vec<SimThread>,
    barriers: Vec<SimBarrier>,
    events: EventQueue,
    scheduler: Box<dyn SimScheduler>,
    tracker: Arc<dyn LoadTracker>,
    workload_name: String,
    now: u64,
    idle: IdleAccounting,
    latency: LatencyRecorder,
    balance_stats: RoundStats,
    finished_count: usize,
    events_processed: u64,
    meta: Vec<CoreMeta>,
    /// Number of cores currently holding two or more threads.
    nr_overloaded: usize,
    /// Total simulated time during which some core was overloaded, advanced
    /// to `v_last_ns`.
    v_total: u64,
    v_last_ns: u64,
    /// The machine-wide balance event is off the calendar (machine asleep).
    balance_parked: bool,
    budget_exhausted: bool,
    trace: TraceSink,
    /// Last narrated busy-state per core, so Park/Unpark events fire only
    /// on transitions (the trace is edge-, not level-triggered).
    core_busy: Vec<bool>,
    balance_rounds: u64,
}

impl EventEngine {
    /// Builds an engine for `workload` under `scheduler`.
    ///
    /// If `topo` is given the core count and NUMA layout come from it,
    /// otherwise `config.nr_cores` cores on a single node are used.
    ///
    /// # Panics
    ///
    /// Panics if the workload fails validation (mismatched barriers).
    pub fn new(
        config: SimConfig,
        topo: Option<&MachineTopology>,
        workload: &Workload,
        scheduler: Box<dyn SimScheduler>,
    ) -> Self {
        workload.validate().unwrap_or_else(|e| panic!("invalid workload: {e}"));
        let queues = match topo {
            Some(t) => CoreQueues::with_topology(t),
            None => CoreQueues::new(config.nr_cores),
        };
        let nr_cores = queues.nr_cores();

        let threads: Vec<SimThread> = workload
            .threads
            .iter()
            .enumerate()
            .map(|(i, spec)| SimThread::new(SimThreadId(i), spec.clone()))
            .collect();
        let barriers = workload.barriers.iter().map(|&(id, n)| SimBarrier::new(id, n)).collect();

        let mut events = EventQueue::with_ordering(config.ordering);
        for thread in &threads {
            events.push(thread.spec.arrival_ns, EventKind::Arrival(thread.id));
        }
        // No per-core timers: they are armed on demand.  The balance tick
        // starts live and parks itself once the machine is asleep.
        events.push(config.balance_period_ns, EventKind::Balance);

        EventEngine {
            idle: IdleAccounting::new(nr_cores),
            latency: LatencyRecorder::new(),
            balance_stats: RoundStats::default(),
            queues,
            threads,
            barriers,
            events,
            tracker: scheduler.tracker(),
            scheduler,
            workload_name: workload.name.clone(),
            now: 0,
            finished_count: 0,
            events_processed: 0,
            meta: vec![
                CoreMeta {
                    timer_armed: false,
                    last_timer_fired_ns: u64::MAX,
                    last_change_ns: 0,
                    was_idle: true,
                    was_overloaded: false,
                    v_snapshot: 0,
                };
                nr_cores
            ],
            nr_overloaded: 0,
            v_total: 0,
            v_last_ns: 0,
            balance_parked: false,
            budget_exhausted: false,
            trace: TraceSink::disabled(),
            core_busy: vec![false; nr_cores],
            balance_rounds: 0,
            config,
        }
    }

    /// Attaches `sink` so the run narrates its decisions: placements,
    /// parking transitions and balancing rounds from the engine, steal
    /// attempts from the scheduler (forwarded a clone).  Recording is
    /// write-only — an attached sink never changes the schedule, so the
    /// tick-engine parity is unaffected.  Call before [`EventEngine::run`]
    /// and keep a clone of the sink to drain.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.scheduler.set_trace_sink(sink.clone());
        self.trace = sink;
        self.trace.set_now(self.now);
        if self.trace.is_enabled() {
            // Every core starts parked; the first election narrates Unpark.
            for core in 0..self.queues.nr_cores() {
                self.trace.record_now(CoreId(core), &TraceEvent::Park);
            }
        }
    }

    /// Narrates `core`'s idle/busy transition, if its state changed since
    /// the last narration.
    fn trace_core_state(&mut self, core: CoreId) {
        if !self.trace.is_enabled() {
            return;
        }
        let busy = self.queues.core(core).current.is_some();
        if busy != self.core_busy[core.0] {
            self.core_busy[core.0] = busy;
            self.trace.record_now(core, if busy { &TraceEvent::Unpark } else { &TraceEvent::Park });
        }
    }

    /// Runs the simulation to completion (or to the horizon / event budget)
    /// and returns the measurements.
    pub fn run(mut self) -> SimResult {
        while let Some(event) = self.events.pop() {
            if event.time > self.config.horizon_ns {
                break;
            }
            if let Some(budget) = self.config.event_budget {
                if self.events_processed >= budget {
                    self.budget_exhausted = true;
                    break;
                }
            }
            self.events_processed += 1;
            self.advance_violation(event.time);
            self.now = event.time;
            self.trace.set_now(self.now);
            self.handle(event);
            if self.finished_count == self.threads.len() {
                break;
            }
        }
        if self.finished_count < self.threads.len() && !self.budget_exhausted {
            // The tick engine keeps every timer and the balance tick on the
            // calendar until the horizon, so its truncated makespan is the
            // last grid point within it; reproduce that without the events.
            let ts = self.config.timeslice_ns;
            let bp = self.config.balance_period_ns;
            let h = self.config.horizon_ns;
            self.now = self.now.max(h / ts * ts).max(h / bp * bp);
        }
        self.advance_violation(self.now);
        for core in 0..self.queues.nr_cores() {
            self.settle(CoreId(core));
        }
        let finished = self.finished_count == self.threads.len();
        SimResult {
            scheduler: self.scheduler.name(),
            workload: self.workload_name,
            makespan_ns: self.now,
            finished,
            operations: self.threads.iter().map(|t| t.ops_completed).sum(),
            events_processed: self.events_processed,
            idle: self.idle,
            latency: self.latency,
            balance: self.balance_stats,
        }
    }

    /// Advances the machine-wide violation integral to `to` using the state
    /// that held since the previous event.
    fn advance_violation(&mut self, to: u64) {
        let span = to.saturating_sub(self.v_last_ns);
        if span > 0 && self.nr_overloaded > 0 {
            self.v_total += span;
        }
        self.v_last_ns = to;
    }

    /// Flushes `core`'s idle accounting up to the present using the status
    /// flags stored at its last change (the violation integral must already
    /// be advanced to `self.now`).
    fn settle(&mut self, core: CoreId) {
        let m = &mut self.meta[core.0];
        let span = self.now.saturating_sub(m.last_change_ns);
        if span > 0 {
            if m.was_idle {
                let violating = self.v_total - m.v_snapshot;
                self.idle.account(core.0, violating, true, true);
                self.idle.account(core.0, span - violating, true, false);
            } else {
                self.idle.account(core.0, span, false, false);
            }
        }
        m.last_change_ns = self.now;
        m.v_snapshot = self.v_total;
    }

    /// Re-reads `core`'s live status into its meta and the overload count.
    fn refresh(&mut self, core: CoreId) {
        let (is_idle, is_over) = {
            let c = self.queues.core(core);
            (c.is_idle(), c.is_overloaded())
        };
        let was_over = self.meta[core.0].was_overloaded;
        if is_over && !was_over {
            self.nr_overloaded += 1;
        } else if !is_over && was_over {
            self.nr_overloaded -= 1;
        }
        let m = &mut self.meta[core.0];
        m.was_idle = is_idle;
        m.was_overloaded = is_over;
    }

    /// Settles and refreshes `core` after a mutation at the present time.
    fn note_change(&mut self, core: CoreId) {
        self.settle(core);
        self.refresh(core);
        self.trace_core_state(core);
    }

    /// Replays the balance-grid tracker folds `core` missed while it was off
    /// the calendar.  Must run *before* mutating the core.
    fn catch_up_core(&mut self, core: CoreId) {
        self.queues.catch_up(
            core,
            self.now,
            self.config.balance_period_ns,
            self.tracker.as_ref(),
            &self.threads,
        );
    }

    /// Folds `core`'s instantaneous load into its tracked average now.
    fn touch(&mut self, core: CoreId) {
        self.queues.touch(core, self.now, self.tracker.as_ref(), &self.threads);
    }

    /// Puts a preemption timer for `core` on the calendar if the core is
    /// preemptible and none is pending.  Timers land on the tick engine's
    /// timeslice grid; a grid point whose timer already fired is skipped.
    fn maybe_arm_timer(&mut self, core: CoreId) {
        if self.meta[core.0].timer_armed {
            return;
        }
        {
            let c = self.queues.core(core);
            if c.current.is_none() || c.ready.is_empty() {
                return;
            }
        }
        let ts = self.config.timeslice_ns;
        let at = if self.now > 0
            && self.now.is_multiple_of(ts)
            && self.meta[core.0].last_timer_fired_ns != self.now
        {
            self.now
        } else {
            (self.now / ts + 1) * ts
        };
        self.events.push(at, EventKind::Timer(core));
        self.meta[core.0].timer_armed = true;
    }

    /// Puts the machine-wide balance event back on its grid after a wakeup
    /// ended a fully-asleep episode.
    fn unpark_balance(&mut self) {
        if !self.balance_parked {
            return;
        }
        self.balance_parked = false;
        let bp = self.config.balance_period_ns;
        self.events.push((self.now / bp + 1) * bp, EventKind::Balance);
    }

    fn handle(&mut self, event: Event) {
        match event.kind {
            EventKind::Arrival(tid) => {
                debug_assert_eq!(self.threads[tid.0].state, ThreadState::NotArrived);
                self.enter_phase(tid);
            }
            EventKind::SleepDone(tid) => {
                debug_assert_eq!(self.threads[tid.0].state, ThreadState::Sleeping);
                self.threads[tid.0].phase_idx += 1;
                self.enter_phase(tid);
            }
            EventKind::PhaseDone { tid, token } => self.on_phase_done(tid, token),
            EventKind::Timer(core) => self.on_timer(core),
            EventKind::Balance => self.on_balance(),
        }
    }

    /// Records that `tid` voluntarily left the runnable population (a
    /// sleep phase or a barrier wait), so trace consumers stop counting
    /// it against its last core's occupancy until it wakes again.
    fn trace_task_sleep(&mut self, tid: SimThreadId) {
        if self.trace.is_enabled() {
            let core = self.threads[tid.0].last_core.unwrap_or(CoreId(0));
            self.trace.record_now(core, &TraceEvent::TaskSleep { task: TaskId(tid.0 as u64) });
        }
    }

    /// Starts the thread's current phase (compute, sleep, barrier) or
    /// finishes the thread if no phase remains.
    fn enter_phase(&mut self, tid: SimThreadId) {
        match self.threads[tid.0].current_phase() {
            None => {
                let thread = &mut self.threads[tid.0];
                thread.state = ThreadState::Finished;
                thread.finish_time = Some(self.now);
                let last = thread.last_core;
                self.finished_count += 1;
                if self.trace.is_enabled() {
                    self.trace.record_now(
                        last.unwrap_or(CoreId(0)),
                        &TraceEvent::TaskDone { task: TaskId(tid.0 as u64) },
                    );
                }
            }
            Some(Phase::Compute(ns)) => {
                self.threads[tid.0].remaining_ns = ns;
                self.make_runnable(tid);
            }
            Some(Phase::Sleep(ns)) => {
                self.threads[tid.0].state = ThreadState::Sleeping;
                self.trace_task_sleep(tid);
                self.events.push(self.now + ns, EventKind::SleepDone(tid));
            }
            Some(Phase::Barrier(id)) => {
                self.threads[tid.0].state = ThreadState::AtBarrier(id);
                self.trace_task_sleep(tid);
                let barrier = self
                    .barriers
                    .iter_mut()
                    .find(|b| b.id == id)
                    .expect("validated workloads declare every barrier");
                if let Some(released) = barrier.arrive(tid) {
                    for freed in released {
                        self.threads[freed.0].phase_idx += 1;
                        self.enter_phase(freed);
                    }
                }
            }
        }
    }

    /// Places a runnable thread on a core, starting it immediately if the
    /// core is idle.
    fn make_runnable(&mut self, tid: SimThreadId) {
        let prev = self.threads[tid.0].last_core;
        let target = match (prev, self.threads[tid.0].spec.origin_core) {
            // First placement of a pinned thread: honour the workload's
            // origin core (e.g. "all workers forked on core 0").
            (None, Some(origin)) => CoreId(origin % self.queues.nr_cores()),
            _ => self.scheduler.place_wakeup(&self.queues, &self.threads, tid, prev),
        };
        self.catch_up_core(target);
        if self.trace.is_enabled() {
            let task = TaskId(tid.0 as u64);
            self.trace.record_now(target, &TraceEvent::TaskWake { task });
            self.trace.record_now(target, &TraceEvent::PlaceDecision { task, core: target });
        }
        let thread = &mut self.threads[tid.0];
        thread.state = ThreadState::Runnable;
        thread.ready_since = Some(self.now);
        thread.last_core = Some(target);
        if self.queues.core(target).current.is_none() {
            self.start_running(target, tid);
        } else {
            self.queues.enqueue(target, tid);
        }
        self.note_change(target);
        self.touch(target);
        self.maybe_arm_timer(target);
        self.unpark_balance();
    }

    /// Puts `tid` on `core` and schedules the completion of its compute
    /// phase.
    fn start_running(&mut self, core: CoreId, tid: SimThreadId) {
        debug_assert!(self.queues.core(core).current.is_none());
        self.queues.core_mut(core).current = Some(tid);
        let thread = &mut self.threads[tid.0];
        thread.state = ThreadState::Running;
        thread.running_since = Some(self.now);
        thread.last_core = Some(core);
        thread.run_token += 1;
        if let Some(ready_since) = thread.ready_since.take() {
            self.latency.record(ready_since, self.now);
        }
        self.events.push(
            self.now + thread.remaining_ns,
            EventKind::PhaseDone { tid, token: thread.run_token },
        );
    }

    /// Elects the oldest waiting thread of `core` if the core is idle.
    fn elect_next(&mut self, core: CoreId) {
        if self.queues.core(core).current.is_none() {
            if let Some(next) = self.queues.pop_ready(core) {
                self.start_running(core, next);
            }
        }
        self.touch(core);
    }

    fn on_phase_done(&mut self, tid: SimThreadId, token: u64) {
        if self.threads[tid.0].run_token != token {
            // The thread was preempted or migrated since this completion was
            // scheduled; a fresh completion event exists.
            return;
        }
        debug_assert_eq!(self.threads[tid.0].state, ThreadState::Running);
        let core = self.threads[tid.0].last_core.expect("a running thread has a core");
        debug_assert_eq!(self.queues.core(core).current, Some(tid));
        self.catch_up_core(core);
        self.queues.core_mut(core).current = None;
        {
            let thread = &mut self.threads[tid.0];
            thread.ops_completed += 1;
            thread.remaining_ns = 0;
            thread.run_token += 1;
            thread.phase_idx += 1;
        }
        self.enter_phase(tid);
        self.elect_next(core);
        self.note_change(core);
        self.maybe_arm_timer(core);
    }

    fn on_timer(&mut self, core: CoreId) {
        self.meta[core.0].timer_armed = false;
        self.meta[core.0].last_timer_fired_ns = self.now;
        // Round-robin preemption: if somebody is waiting, the running thread
        // yields the core and requeues at the tail.  A timer that went stale
        // while on the calendar fires as a no-op.
        if let Some(running) = self.queues.core(core).current {
            if !self.queues.core(core).ready.is_empty() {
                self.catch_up_core(core);
                let thread = &mut self.threads[running.0];
                let ran_for =
                    self.now - thread.running_since.expect("running thread has a start time");
                thread.remaining_ns = thread.remaining_ns.saturating_sub(ran_for);
                thread.run_token += 1;
                thread.state = ThreadState::Runnable;
                thread.ready_since = Some(self.now);
                self.queues.core_mut(core).current = None;
                self.queues.enqueue(core, running);
                self.elect_next(core);
                self.note_change(core);
            }
        }
        self.maybe_arm_timer(core);
    }

    fn on_balance(&mut self) {
        // Bring every core to the present before the selection phase reads
        // it: replay missed grid folds, fold at the present (the tick
        // engine's `touch_all`), and flush idle accounting so the round's
        // mutations settle from a clean slate.  O(cores) here is free —
        // `balance_round` itself snapshots every core anyway.
        for core in 0..self.queues.nr_cores() {
            let id = CoreId(core);
            self.catch_up_core(id);
            self.touch(id);
            self.settle(id);
        }
        if self.trace.is_enabled() {
            self.trace
                .record_now(CoreId(0), &TraceEvent::BalanceRound { round: self.balance_rounds });
        }
        self.balance_rounds += 1;
        self.queues.enable_mutation_log();
        let stats = self.scheduler.balance_round(&mut self.queues, &self.threads);
        let mutated = self.queues.drain_mutation_log();
        let round_was_noop = stats.successes == 0 && stats.failures == 0 && stats.migrations == 0;
        self.balance_stats.merge(stats);
        // Only cores the round actually moved work between need election
        // (the tick engine elects every core, but an untouched core's
        // election is a no-op by the runqueue invariant).
        for &core in &mutated {
            self.elect_next(core);
            self.note_change(core);
            self.maybe_arm_timer(core);
        }
        if self.finished_count < self.threads.len() {
            let asleep = round_was_noop
                && self.queues.total_threads() == 0
                && self.queues.cores().iter().all(|c| c.tracked.scaled == 0);
            if asleep {
                // Every future round would be a no-op over unchanged queues
                // and fully-decayed loads: park until the next wakeup.
                self.balance_parked = true;
            } else {
                self.events.push(self.now + self.config.balance_period_ns, EventKind::Balance);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfs::{CfsBugs, CfsLikeScheduler};
    use crate::engine::Engine;
    use crate::scheduler::{HierarchicalScheduler, OptimisticScheduler};
    use sched_core::Policy;
    use sched_workloads::{ScientificWorkload, ThreadSpec};

    fn assert_parity(tick: &SimResult, event: &SimResult) {
        assert_eq!(event.makespan_ns, tick.makespan_ns, "makespan");
        assert_eq!(event.finished, tick.finished, "finished");
        assert_eq!(event.operations, tick.operations, "operations");
        assert_eq!(event.balance.successes, tick.balance.successes, "successes");
        assert_eq!(event.balance.failures, tick.balance.failures, "failures");
        assert_eq!(event.balance.migrations, tick.balance.migrations, "migrations");
        assert_eq!(event.balance.level_migrations, tick.balance.level_migrations, "levels");
        assert_eq!(event.latency.count(), tick.latency.count(), "latency samples");
        assert_eq!(event.idle.total_busy(), tick.idle.total_busy(), "busy time");
        assert_eq!(event.idle.total_idle_benign(), tick.idle.total_idle_benign(), "benign idle");
        assert_eq!(
            event.idle.total_idle_violating(),
            tick.idle.total_idle_violating(),
            "violating idle"
        );
        for core in 0..tick.idle.nr_cores() {
            assert_eq!(event.idle.busy(core), tick.idle.busy(core), "busy of core {core}");
            assert_eq!(
                event.idle.idle_violating(core),
                tick.idle.idle_violating(core),
                "violating idle of core {core}"
            );
        }
    }

    fn scientific(nr_threads: usize) -> Workload {
        ScientificWorkload {
            nr_threads,
            iterations: 3,
            phase_ns: 2_000_000,
            jitter: 0.0,
            seed: 1,
            fork_on_core: Some(0),
        }
        .generate()
    }

    #[test]
    fn matches_the_tick_engine_on_a_fork_join_workload() {
        let workload = scientific(8);
        let tick = Engine::new(
            SimConfig::with_cores(8),
            None,
            &workload,
            Box::new(OptimisticScheduler::new(Policy::simple())),
        )
        .run();
        let event = EventEngine::new(
            SimConfig::with_cores(8),
            None,
            &workload,
            Box::new(OptimisticScheduler::new(Policy::simple())),
        )
        .run();
        assert_parity(&tick, &event);
        assert!(
            event.events_processed < tick.events_processed,
            "timer elision must shrink the event count ({} vs {})",
            event.events_processed,
            tick.events_processed
        );
    }

    #[test]
    fn matches_the_tick_engine_under_pelt_decay() {
        let workload = sched_workloads::BurstyWorkload::default().generate();
        let run_tick = |policy: Policy| {
            Engine::new(
                SimConfig::with_cores(8),
                None,
                &workload,
                Box::new(OptimisticScheduler::new(policy)),
            )
            .run()
        };
        let run_event = |policy: Policy| {
            EventEngine::new(
                SimConfig::with_cores(8),
                None,
                &workload,
                Box::new(OptimisticScheduler::new(policy)),
            )
            .run()
        };
        assert_parity(&run_tick(Policy::simple()), &run_event(Policy::simple()));
        assert_parity(&run_tick(Policy::pelt(8_000_000)), &run_event(Policy::pelt(8_000_000)));
    }

    #[test]
    fn matches_the_tick_engine_on_numa_topologies_and_buggy_cfs() {
        let topo = sched_topology::TopologyBuilder::new().sockets(2).cores_per_socket(8).build();
        let arc = Arc::new(topo.clone());
        let workload = scientific(topo.nr_cpus());
        let schedulers: Vec<Box<dyn Fn() -> Box<dyn SimScheduler>>> = vec![
            Box::new(|| Box::new(OptimisticScheduler::new(Policy::simple()))),
            Box::new(|| Box::new(CfsLikeScheduler::new(CfsBugs::all()))),
            Box::new({
                let arc = Arc::clone(&arc);
                move || Box::new(HierarchicalScheduler::new(Policy::simple(), Arc::clone(&arc)))
            }),
        ];
        for make in schedulers {
            let tick = Engine::new(SimConfig::default(), Some(&topo), &workload, make()).run();
            let event =
                EventEngine::new(SimConfig::default(), Some(&topo), &workload, make()).run();
            assert_parity(&tick, &event);
        }
    }

    #[test]
    fn a_mostly_sleeping_machine_stays_off_the_calendar() {
        // 64 threads that sleep almost the whole run: the tick engine pays
        // for every core every timeslice, the event engine only for the
        // sparse bursts.
        let mut workload = Workload::new("sleepy");
        for i in 0..64u64 {
            let mut spec = ThreadSpec::new(vec![
                Phase::Compute(100_000),
                Phase::Sleep(2_000_000_000 + i * 1_000),
                Phase::Compute(100_000),
            ]);
            spec.arrival_ns = i * 7_000;
            workload.push(spec);
        }
        let config = SimConfig::with_cores(64);
        let tick = Engine::new(
            config.clone(),
            None,
            &workload,
            Box::new(OptimisticScheduler::new(Policy::simple())),
        )
        .run();
        let event = EventEngine::new(
            config,
            None,
            &workload,
            Box::new(OptimisticScheduler::new(Policy::simple())),
        )
        .run();
        assert_parity(&tick, &event);
        assert!(
            event.events_processed * 20 < tick.events_processed,
            "a sleeping machine must cost events proportional to work, not cores × time \
             ({} vs {})",
            event.events_processed,
            tick.events_processed
        );
    }

    #[test]
    fn event_budget_truncates_the_run() {
        let workload = scientific(8);
        let result = EventEngine::new(
            SimConfig::with_cores(8).with_event_budget(10),
            None,
            &workload,
            Box::new(OptimisticScheduler::new(Policy::simple())),
        )
        .run();
        assert!(!result.finished);
        assert_eq!(result.events_processed, 10);
    }

    #[test]
    fn seeded_ordering_still_satisfies_conservation() {
        // Same-time permutations change the schedule but never lose or
        // duplicate work: every seed completes all operations.
        let workload = scientific(8);
        let baseline = EventEngine::new(
            SimConfig::with_cores(8),
            None,
            &workload,
            Box::new(OptimisticScheduler::new(Policy::simple())),
        )
        .run();
        for seed in 0..8u64 {
            let result = EventEngine::new(
                SimConfig::with_cores(8).with_ordering(crate::event::OrderingPolicy::Seeded(seed)),
                None,
                &workload,
                Box::new(OptimisticScheduler::new(Policy::simple())),
            )
            .run();
            assert!(result.finished, "seed {seed} must still finish");
            assert_eq!(result.operations, baseline.operations, "seed {seed}");
        }
    }

    #[test]
    fn horizon_truncation_matches_the_tick_engine() {
        let mut workload = Workload::new("huge");
        workload.push(ThreadSpec::new(vec![Phase::Compute(1_000_000_000)]));
        let config = SimConfig::with_cores(2).horizon(10_500_000);
        let tick = Engine::new(
            config.clone(),
            None,
            &workload,
            Box::new(OptimisticScheduler::new(Policy::simple())),
        )
        .run();
        let event = EventEngine::new(
            config,
            None,
            &workload,
            Box::new(OptimisticScheduler::new(Policy::simple())),
        )
        .run();
        assert!(!tick.finished && !event.finished);
        assert_parity(&tick, &event);
    }
}
