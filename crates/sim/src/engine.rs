//! The tick-driven simulation engine.
//!
//! The engine owns the *mechanism* — time, runqueues, election, preemption,
//! barriers — and delegates the two *policies* the paper studies to a
//! [`SimScheduler`]: where waking threads are placed, and how runqueues are
//! balanced every balancing period.  Runs are fully deterministic given the
//! workload, the scheduler and the configured [`OrderingPolicy`].
//!
//! This engine keeps every core on the calendar: each core re-arms its
//! preemption timer every timeslice whether or not it has work, so a run
//! costs O(cores × rounds) even when the machine is mostly asleep.  The
//! [`crate::event_engine::EventEngine`] reproduces exactly the same schedule
//! (pinned by parity tests) while only paying for cores that actually have
//! something to do.
//!
//! [`OrderingPolicy`]: crate::event::OrderingPolicy

use std::sync::Arc;

use sched_core::tracker::LoadTracker;
use sched_core::{CoreId, TaskId};
use sched_metrics::{IdleAccounting, LatencyRecorder};
use sched_topology::MachineTopology;
use sched_trace::{TraceEvent, TraceSink};
use sched_workloads::{Phase, Workload};

use crate::barrier::SimBarrier;
use crate::config::SimConfig;
use crate::event::{Event, EventKind, EventQueue};
use crate::queues::CoreQueues;
use crate::result::SimResult;
use crate::scheduler::{RoundStats, SimScheduler};
use crate::thread::{SimThread, SimThreadId, ThreadState};

/// The discrete-event simulator.
pub struct Engine {
    config: SimConfig,
    queues: CoreQueues,
    threads: Vec<SimThread>,
    barriers: Vec<SimBarrier>,
    events: EventQueue,
    scheduler: Box<dyn SimScheduler>,
    /// The scheduler's load criterion: the engine folds every run, sleep
    /// and wakeup event into the per-core tracked averages under it.
    tracker: Arc<dyn LoadTracker>,
    workload_name: String,
    now: u64,
    last_account: u64,
    idle: IdleAccounting,
    latency: LatencyRecorder,
    balance_stats: RoundStats,
    finished_count: usize,
    events_processed: u64,
    trace: TraceSink,
    /// Last narrated busy-state per core, so Park/Unpark events fire only
    /// on transitions (the trace is edge-, not level-triggered).
    core_busy: Vec<bool>,
    balance_rounds: u64,
}

impl Engine {
    /// Builds an engine for `workload` under `scheduler`.
    ///
    /// If `topo` is given the core count and NUMA layout come from it,
    /// otherwise `config.nr_cores` cores on a single node are used.
    ///
    /// # Panics
    ///
    /// Panics if the workload fails validation (mismatched barriers).
    pub fn new(
        config: SimConfig,
        topo: Option<&MachineTopology>,
        workload: &Workload,
        scheduler: Box<dyn SimScheduler>,
    ) -> Self {
        workload.validate().unwrap_or_else(|e| panic!("invalid workload: {e}"));
        let queues = match topo {
            Some(t) => CoreQueues::with_topology(t),
            None => CoreQueues::new(config.nr_cores),
        };
        let nr_cores = queues.nr_cores();

        let threads: Vec<SimThread> = workload
            .threads
            .iter()
            .enumerate()
            .map(|(i, spec)| SimThread::new(SimThreadId(i), spec.clone()))
            .collect();
        let barriers = workload.barriers.iter().map(|&(id, n)| SimBarrier::new(id, n)).collect();

        let mut events = EventQueue::with_ordering(config.ordering);
        for thread in &threads {
            events.push(thread.spec.arrival_ns, EventKind::Arrival(thread.id));
        }
        for core in 0..nr_cores {
            events.push(config.timeslice_ns, EventKind::Timer(CoreId(core)));
        }
        events.push(config.balance_period_ns, EventKind::Balance);

        Engine {
            idle: IdleAccounting::new(nr_cores),
            latency: LatencyRecorder::new(),
            balance_stats: RoundStats::default(),
            queues,
            threads,
            barriers,
            events,
            tracker: scheduler.tracker(),
            scheduler,
            workload_name: workload.name.clone(),
            now: 0,
            last_account: 0,
            finished_count: 0,
            events_processed: 0,
            trace: TraceSink::disabled(),
            core_busy: vec![false; nr_cores],
            balance_rounds: 0,
            config,
        }
    }

    /// Attaches `sink` so the run narrates its decisions: placements,
    /// parking transitions and balancing rounds from the engine, steal
    /// attempts from the scheduler (forwarded a clone).  Recording is
    /// write-only — an attached sink never changes the schedule.  Call
    /// before [`Engine::run`] and keep a clone of the sink to drain.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.scheduler.set_trace_sink(sink.clone());
        self.trace = sink;
        self.trace.set_now(self.now);
        if self.trace.is_enabled() {
            // Every core starts parked; the first election narrates Unpark.
            for core in 0..self.queues.nr_cores() {
                self.trace.record_now(CoreId(core), &TraceEvent::Park);
            }
        }
    }

    /// Narrates `core`'s idle/busy transition, if its state changed since
    /// the last narration.
    fn trace_core_state(&mut self, core: CoreId) {
        if !self.trace.is_enabled() {
            return;
        }
        let busy = self.queues.core(core).current.is_some();
        if busy != self.core_busy[core.0] {
            self.core_busy[core.0] = busy;
            self.trace.record_now(core, if busy { &TraceEvent::Unpark } else { &TraceEvent::Park });
        }
    }

    /// Folds `core`'s current instantaneous load into its tracked average
    /// at the present simulation time.  Called after every queue mutation,
    /// so decayed criteria see each run/sleep/wakeup transition.
    fn touch(&mut self, core: CoreId) {
        self.queues.touch(core, self.now, self.tracker.as_ref(), &self.threads);
    }

    /// Runs the simulation to completion (or to the horizon) and returns the
    /// measurements.
    pub fn run(mut self) -> SimResult {
        while let Some(event) = self.events.pop() {
            if event.time > self.config.horizon_ns {
                break;
            }
            if let Some(budget) = self.config.event_budget {
                if self.events_processed >= budget {
                    break;
                }
            }
            self.events_processed += 1;
            self.account_until(event.time);
            self.now = event.time;
            self.trace.set_now(self.now);
            self.handle(event);
            if self.finished_count == self.threads.len() {
                break;
            }
        }
        self.account_until(self.now);
        let finished = self.finished_count == self.threads.len();
        SimResult {
            scheduler: self.scheduler.name(),
            workload: self.workload_name,
            makespan_ns: self.now,
            finished,
            operations: self.threads.iter().map(|t| t.ops_completed).sum(),
            events_processed: self.events_processed,
            idle: self.idle,
            latency: self.latency,
            balance: self.balance_stats,
        }
    }

    fn account_until(&mut self, t: u64) {
        let span = t.saturating_sub(self.last_account);
        if span == 0 {
            return;
        }
        let any_overloaded = self.queues.any_overloaded();
        for core in self.queues.cores() {
            self.idle.account(core.id.0, span, core.is_idle(), any_overloaded);
        }
        self.last_account = t;
    }

    fn handle(&mut self, event: Event) {
        match event.kind {
            EventKind::Arrival(tid) => {
                debug_assert_eq!(self.threads[tid.0].state, ThreadState::NotArrived);
                self.enter_phase(tid);
            }
            EventKind::SleepDone(tid) => {
                debug_assert_eq!(self.threads[tid.0].state, ThreadState::Sleeping);
                self.threads[tid.0].phase_idx += 1;
                self.enter_phase(tid);
            }
            EventKind::PhaseDone { tid, token } => self.on_phase_done(tid, token),
            EventKind::Timer(core) => self.on_timer(core),
            EventKind::Balance => self.on_balance(),
        }
    }

    /// Records that `tid` voluntarily left the runnable population (a
    /// sleep phase or a barrier wait), so trace consumers stop counting
    /// it against its last core's occupancy until it wakes again.
    fn trace_task_sleep(&mut self, tid: SimThreadId) {
        if self.trace.is_enabled() {
            let core = self.threads[tid.0].last_core.unwrap_or(CoreId(0));
            self.trace.record_now(core, &TraceEvent::TaskSleep { task: TaskId(tid.0 as u64) });
        }
    }

    /// Starts the thread's current phase (compute, sleep, barrier) or
    /// finishes the thread if no phase remains.
    fn enter_phase(&mut self, tid: SimThreadId) {
        match self.threads[tid.0].current_phase() {
            None => {
                let thread = &mut self.threads[tid.0];
                thread.state = ThreadState::Finished;
                thread.finish_time = Some(self.now);
                let last = thread.last_core;
                self.finished_count += 1;
                if self.trace.is_enabled() {
                    self.trace.record_now(
                        last.unwrap_or(CoreId(0)),
                        &TraceEvent::TaskDone { task: TaskId(tid.0 as u64) },
                    );
                }
            }
            Some(Phase::Compute(ns)) => {
                self.threads[tid.0].remaining_ns = ns;
                self.make_runnable(tid);
            }
            Some(Phase::Sleep(ns)) => {
                self.threads[tid.0].state = ThreadState::Sleeping;
                self.trace_task_sleep(tid);
                self.events.push(self.now + ns, EventKind::SleepDone(tid));
            }
            Some(Phase::Barrier(id)) => {
                self.threads[tid.0].state = ThreadState::AtBarrier(id);
                self.trace_task_sleep(tid);
                let barrier = self
                    .barriers
                    .iter_mut()
                    .find(|b| b.id == id)
                    .expect("validated workloads declare every barrier");
                if let Some(released) = barrier.arrive(tid) {
                    for freed in released {
                        self.threads[freed.0].phase_idx += 1;
                        self.enter_phase(freed);
                    }
                }
            }
        }
    }

    /// Places a runnable thread on a core, starting it immediately if the
    /// core is idle.
    fn make_runnable(&mut self, tid: SimThreadId) {
        let prev = self.threads[tid.0].last_core;
        let target = match (prev, self.threads[tid.0].spec.origin_core) {
            // First placement of a pinned thread: honour the workload's
            // origin core (e.g. "all workers forked on core 0").
            (None, Some(origin)) => CoreId(origin % self.queues.nr_cores()),
            _ => self.scheduler.place_wakeup(&self.queues, &self.threads, tid, prev),
        };
        if self.trace.is_enabled() {
            let task = TaskId(tid.0 as u64);
            self.trace.record_now(target, &TraceEvent::TaskWake { task });
            self.trace.record_now(target, &TraceEvent::PlaceDecision { task, core: target });
        }
        let thread = &mut self.threads[tid.0];
        thread.state = ThreadState::Runnable;
        thread.ready_since = Some(self.now);
        thread.last_core = Some(target);
        if self.queues.core(target).current.is_none() {
            self.start_running(target, tid);
        } else {
            self.queues.enqueue(target, tid);
        }
        self.touch(target);
        self.trace_core_state(target);
    }

    /// Puts `tid` on `core` and schedules the completion of its compute
    /// phase.
    fn start_running(&mut self, core: CoreId, tid: SimThreadId) {
        debug_assert!(self.queues.core(core).current.is_none());
        self.queues.core_mut(core).current = Some(tid);
        let thread = &mut self.threads[tid.0];
        thread.state = ThreadState::Running;
        thread.running_since = Some(self.now);
        thread.last_core = Some(core);
        thread.run_token += 1;
        if let Some(ready_since) = thread.ready_since.take() {
            self.latency.record(ready_since, self.now);
        }
        self.events.push(
            self.now + thread.remaining_ns,
            EventKind::PhaseDone { tid, token: thread.run_token },
        );
    }

    /// Elects the oldest waiting thread of `core` if the core is idle.
    fn elect_next(&mut self, core: CoreId) {
        if self.queues.core(core).current.is_none() {
            if let Some(next) = self.queues.pop_ready(core) {
                self.start_running(core, next);
            }
        }
        self.touch(core);
        self.trace_core_state(core);
    }

    fn on_phase_done(&mut self, tid: SimThreadId, token: u64) {
        if self.threads[tid.0].run_token != token {
            // The thread was preempted or migrated since this completion was
            // scheduled; a fresh completion event exists.
            return;
        }
        debug_assert_eq!(self.threads[tid.0].state, ThreadState::Running);
        let core = self.threads[tid.0].last_core.expect("a running thread has a core");
        debug_assert_eq!(self.queues.core(core).current, Some(tid));
        self.queues.core_mut(core).current = None;
        {
            let thread = &mut self.threads[tid.0];
            thread.ops_completed += 1;
            thread.remaining_ns = 0;
            thread.run_token += 1;
            thread.phase_idx += 1;
        }
        self.enter_phase(tid);
        self.elect_next(core);
    }

    fn on_timer(&mut self, core: CoreId) {
        // Round-robin preemption: if somebody is waiting, the running thread
        // yields the core and requeues at the tail.
        if let Some(running) = self.queues.core(core).current {
            if !self.queues.core(core).ready.is_empty() {
                let thread = &mut self.threads[running.0];
                let ran_for =
                    self.now - thread.running_since.expect("running thread has a start time");
                thread.remaining_ns = thread.remaining_ns.saturating_sub(ran_for);
                thread.run_token += 1;
                thread.state = ThreadState::Runnable;
                thread.ready_since = Some(self.now);
                self.queues.core_mut(core).current = None;
                self.queues.enqueue(core, running);
                self.elect_next(core);
            }
        }
        if self.finished_count < self.threads.len() {
            self.events.push(self.now + self.config.timeslice_ns, EventKind::Timer(core));
        }
    }

    fn on_balance(&mut self) {
        // Decay every tracked load to the present before the selection
        // phase reads it, and refresh after the migrations settle.
        self.queues.touch_all(self.now, self.tracker.as_ref(), &self.threads);
        if self.trace.is_enabled() {
            self.trace
                .record_now(CoreId(0), &TraceEvent::BalanceRound { round: self.balance_rounds });
        }
        self.balance_rounds += 1;
        let stats = self.scheduler.balance_round(&mut self.queues, &self.threads);
        self.balance_stats.merge(stats);
        // Any core that received work while idle starts running it now
        // (elect_next also refreshes each core's tracked load).
        for core in 0..self.queues.nr_cores() {
            self.elect_next(CoreId(core));
        }
        if self.finished_count < self.threads.len() {
            self.events.push(self.now + self.config.balance_period_ns, EventKind::Balance);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfs::{CfsBugs, CfsLikeScheduler};
    use crate::scheduler::OptimisticScheduler;
    use sched_core::Policy;
    use sched_workloads::{ScientificWorkload, ThreadSpec};

    fn small_scientific() -> Workload {
        ScientificWorkload {
            nr_threads: 8,
            iterations: 3,
            phase_ns: 2_000_000,
            jitter: 0.0,
            seed: 1,
            fork_on_core: Some(0),
        }
        .generate()
    }

    #[test]
    fn optimistic_scheduler_finishes_the_scientific_workload() {
        let workload = small_scientific();
        let engine = Engine::new(
            SimConfig::with_cores(8),
            None,
            &workload,
            Box::new(OptimisticScheduler::new(Policy::simple())),
        );
        let result = engine.run();
        assert!(result.finished, "the workload must complete before the horizon");
        assert_eq!(result.operations, 8 * 3);
        // Perfectly parallel, each iteration takes ~2ms: the makespan should
        // be within a small factor of the 6ms ideal.
        assert!(result.makespan_ns >= 6_000_000);
        assert!(result.makespan_ns < 30_000_000, "makespan {} too slow", result.makespan_ns);
    }

    #[test]
    fn buggy_cfs_is_substantially_slower_on_fork_join() {
        // A dual-socket machine; all workers fork on a core of node 0.  The
        // group-imbalance bug keeps node 1 idle, so the barrier workload
        // loses roughly half the machine.
        let topo = sched_topology::TopologyBuilder::new().sockets(2).cores_per_socket(8).build();
        let workload = ScientificWorkload {
            nr_threads: topo.nr_cpus(),
            iterations: 3,
            phase_ns: 2_000_000,
            jitter: 0.0,
            seed: 1,
            fork_on_core: Some(0),
        }
        .generate();
        let good = Engine::new(
            SimConfig::default(),
            Some(&topo),
            &workload,
            Box::new(OptimisticScheduler::new(Policy::simple())),
        )
        .run();
        let bad = Engine::new(
            SimConfig::default(),
            Some(&topo),
            &workload,
            Box::new(CfsLikeScheduler::new(CfsBugs::all())),
        )
        .run();
        assert!(bad.finished && good.finished);
        assert!(
            bad.slowdown_vs(&good) > 1.5,
            "hiding half the machine should hurt the barrier workload (slowdown {:.2})",
            bad.slowdown_vs(&good)
        );
        assert!(bad.violating_idle_fraction() > good.violating_idle_fraction());
    }

    #[test]
    fn single_thread_workload_runs_to_completion() {
        let mut workload = Workload::new("one");
        workload.push(ThreadSpec::new(vec![
            Phase::Compute(1_000_000),
            Phase::Sleep(500_000),
            Phase::Compute(1_000_000),
        ]));
        let engine = Engine::new(
            SimConfig::with_cores(2),
            None,
            &workload,
            Box::new(OptimisticScheduler::new(Policy::simple())),
        );
        let result = engine.run();
        assert!(result.finished);
        assert_eq!(result.operations, 2);
        assert!(result.makespan_ns >= 2_500_000);
    }

    #[test]
    fn horizon_truncates_unfinished_runs() {
        let mut workload = Workload::new("huge");
        workload.push(ThreadSpec::new(vec![Phase::Compute(1_000_000_000)]));
        let engine = Engine::new(
            SimConfig::with_cores(1).horizon(10_000_000),
            None,
            &workload,
            Box::new(OptimisticScheduler::new(Policy::simple())),
        );
        let result = engine.run();
        assert!(!result.finished);
    }

    #[test]
    fn balancing_statistics_are_collected() {
        let workload = ScientificWorkload {
            nr_threads: 16,
            iterations: 2,
            phase_ns: 8_000_000,
            jitter: 0.0,
            seed: 3,
            fork_on_core: Some(0),
        }
        .generate();
        let result = Engine::new(
            SimConfig::with_cores(8),
            None,
            &workload,
            Box::new(OptimisticScheduler::new(Policy::simple())),
        )
        .run();
        assert!(result.balance.successes > 0, "forked threads must be spread by stealing");
        assert!(result.latency.count() > 0);
    }

    #[test]
    fn pelt_scheduler_completes_workloads_and_migrates_less_than_instantaneous() {
        // A bursty on/off workload: the instantaneous balancer reacts to
        // every blip, the decayed one only to sustained imbalance.
        let workload = sched_workloads::BurstyWorkload::default().generate();
        let run = |policy: Policy| {
            Engine::new(SimConfig::with_cores(8), None, &workload, {
                Box::new(OptimisticScheduler::new(policy))
            })
            .run()
        };
        let inst = run(Policy::simple());
        let pelt = run(Policy::pelt(8_000_000));
        assert!(inst.finished && pelt.finished);
        assert!(
            pelt.balance.migrations <= inst.balance.migrations,
            "decayed balancing must not out-migrate instantaneous balancing \
             on a bursty workload ({} vs {})",
            pelt.balance.migrations,
            inst.balance.migrations
        );
    }

    #[test]
    fn runs_with_a_numa_topology() {
        let topo = sched_topology::TopologyBuilder::dual_socket_server();
        let workload = ScientificWorkload {
            nr_threads: topo.nr_cpus(),
            iterations: 2,
            phase_ns: 1_000_000,
            jitter: 0.0,
            seed: 5,
            fork_on_core: Some(0),
        }
        .generate();
        let result = Engine::new(
            SimConfig::default(),
            Some(&topo),
            &workload,
            Box::new(OptimisticScheduler::new(Policy::simple())),
        )
        .run();
        assert!(result.finished);
        assert_eq!(result.idle.nr_cores(), topo.nr_cpus());
    }
}
