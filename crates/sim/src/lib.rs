//! Deterministic multicore scheduler simulator.
//!
//! The paper's authors evaluate scheduling policies by generating a Linux
//! scheduling class and running real applications on real multicore
//! hardware.  Neither is available here, so this crate provides the
//! substitute substrate (DESIGN.md §2): a simulator of a multicore machine
//! with per-core runqueues, preemption, sleeping, barriers and periodic
//! machine-wide load-balancing rounds.
//!
//! Two engines drive the same simulation:
//!
//! * [`engine::Engine`] — the tick-driven engine: every core re-arms its
//!   preemption timer every timeslice and every balance tick folds every
//!   core's tracked load, so a run costs O(cores × rounds);
//! * [`event_engine::EventEngine`] — the event-driven engine: cores sleep
//!   off the calendar until a wakeup, balance or timer event targets them,
//!   tracker decay is replayed lazily, and the machine-wide balance tick
//!   parks while the machine is asleep, so a run costs O(events).
//!
//! Under the default [`event::OrderingPolicy::Priority`] tie-break the two
//! engines produce identical results (pinned by parity tests);
//! [`event::OrderingPolicy::Seeded`] turns the same-time tie-break into a
//! seeded permutation for systematic schedule exploration.
//!
//! Two schedulers plug into either engine:
//!
//! * [`scheduler::OptimisticScheduler`] — the paper's verified three-step
//!   balancer, driven by any [`sched_core::Policy`];
//! * [`cfs::CfsLikeScheduler`] — a CFS-like baseline with the two
//!   "wasted cores" bugs (overload-on-wakeup, group imbalance) injectable,
//!   reproducing the §1 motivation numbers in shape.
//!
//! The engines measure exactly the quantities the paper talks about:
//! violating idle time (idle while another core is overloaded), makespan,
//! throughput, scheduling latency, steal success/failure counts, and the
//! number of discrete events processed.
//!
//! # Example
//!
//! ```
//! use sched_core::Policy;
//! use sched_sim::{Engine, OptimisticScheduler, SimConfig};
//! use sched_workloads::ScientificWorkload;
//!
//! let workload = ScientificWorkload { nr_threads: 4, iterations: 2, ..Default::default() }.generate();
//! let engine = Engine::new(
//!     SimConfig::with_cores(4),
//!     None,
//!     &workload,
//!     Box::new(OptimisticScheduler::new(Policy::simple())),
//! );
//! let result = engine.run();
//! assert!(result.finished);
//! ```

pub mod barrier;
pub mod cfs;
pub mod config;
pub mod engine;
pub mod event;
pub mod event_engine;
pub mod queues;
pub mod result;
pub mod scheduler;
pub mod thread;

pub use cfs::{CfsBugs, CfsLikeScheduler};
pub use config::SimConfig;
pub use engine::Engine;
pub use event::OrderingPolicy;
pub use event_engine::EventEngine;
pub use queues::{CoreQueues, SimCore};
pub use result::SimResult;
pub use scheduler::{HierarchicalScheduler, OptimisticScheduler, RoundStats, SimScheduler};
pub use thread::{SimThread, SimThreadId, ThreadState};
