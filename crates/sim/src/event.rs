//! The discrete-event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sched_core::CoreId;

use crate::thread::SimThreadId;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A thread becomes runnable for the first time.
    Arrival(SimThreadId),
    /// A sleeping thread wakes up.
    SleepDone(SimThreadId),
    /// The running thread's current compute phase completes.
    ///
    /// The token invalidates completions scheduled before a preemption.
    PhaseDone {
        /// The thread whose phase completes.
        tid: SimThreadId,
        /// Run token captured when the completion was scheduled.
        token: u64,
    },
    /// Per-core preemption timer.
    Timer(CoreId),
    /// The machine-wide load-balancing tick (all cores balance together,
    /// as CFS does every 4 ms).
    Balance,
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Absolute simulation time the event fires at, in nanoseconds.
    pub time: u64,
    /// Tie-break sequence number (FIFO among simultaneous events).
    pub seq: u64,
    /// The event payload.
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-heap of events ordered by time (FIFO among equal times).
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at absolute time `time`.
    pub fn push(&mut self, time: u64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Event { time, seq, kind }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no event is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        q.push(20, EventKind::Balance);
        q.push(10, EventKind::Timer(CoreId(0)));
        q.push(10, EventKind::Arrival(SimThreadId(1)));
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(10));
        let first = q.pop().unwrap();
        let second = q.pop().unwrap();
        let third = q.pop().unwrap();
        assert_eq!(first.kind, EventKind::Timer(CoreId(0)));
        assert_eq!(second.kind, EventKind::Arrival(SimThreadId(1)));
        assert_eq!(third.time, 20);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn phase_done_tokens_are_part_of_the_event() {
        let mut q = EventQueue::new();
        q.push(5, EventKind::PhaseDone { tid: SimThreadId(0), token: 3 });
        match q.pop().unwrap().kind {
            EventKind::PhaseDone { tid, token } => {
                assert_eq!(tid, SimThreadId(0));
                assert_eq!(token, 3);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
}
