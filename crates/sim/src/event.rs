//! The discrete-event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sched_core::CoreId;

use crate::thread::SimThreadId;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A thread becomes runnable for the first time.
    Arrival(SimThreadId),
    /// A sleeping thread wakes up.
    SleepDone(SimThreadId),
    /// The running thread's current compute phase completes.
    ///
    /// The token invalidates completions scheduled before a preemption.
    PhaseDone {
        /// The thread whose phase completes.
        tid: SimThreadId,
        /// Run token captured when the completion was scheduled.
        token: u64,
    },
    /// Per-core preemption timer.
    Timer(CoreId),
    /// The machine-wide load-balancing tick (all cores balance together,
    /// as CFS does every 4 ms).
    Balance,
}

/// How simultaneous events are ordered relative to each other.
///
/// Both engines drain events in `(time, rank, seq)` order; the policy decides
/// the rank. `Priority` is the default and the only policy under which the
/// tick engine and the event engine are tie-for-tie identical (FIFO ties
/// depend on *push* order, which differs once the event engine elides idle
/// timer ticks). `Seeded` turns the tie-break into a seeded permutation and
/// is the verification mode: sweeping seeds explores same-time schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderingPolicy {
    /// First pushed fires first (the legacy tick-engine tie-break).
    Fifo,
    /// Balance first, then wakeups (arrival / sleep-done / phase-done) in
    /// push order, then per-core timers in core order.
    #[default]
    Priority,
    /// Seeded pseudo-random permutation of simultaneous events.
    Seeded(u64),
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl OrderingPolicy {
    /// Rank of `kind` for a push carrying sequence number `seq`.
    fn rank(self, kind: EventKind, seq: u64) -> u64 {
        match self {
            OrderingPolicy::Fifo => 0,
            OrderingPolicy::Priority => match kind {
                EventKind::Balance => 0,
                EventKind::Arrival(_) | EventKind::SleepDone(_) | EventKind::PhaseDone { .. } => {
                    1 << 32
                }
                EventKind::Timer(core) => (1 << 33) + core.0 as u64,
            },
            OrderingPolicy::Seeded(seed) => splitmix64(seed ^ splitmix64(seq)),
        }
    }
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Absolute simulation time the event fires at, in nanoseconds.
    pub time: u64,
    /// Same-time ordering rank assigned by the queue's [`OrderingPolicy`].
    pub rank: u64,
    /// Tie-break sequence number (FIFO among simultaneous equal-rank events).
    pub seq: u64,
    /// The event payload.
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.rank, self.seq).cmp(&(other.time, other.rank, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-heap of events ordered by `(time, rank, seq)`.
#[derive(Debug)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
    ordering: OrderingPolicy,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// Creates an empty queue with the legacy FIFO tie-break.
    pub fn new() -> Self {
        Self::with_ordering(OrderingPolicy::Fifo)
    }

    /// Creates an empty queue resolving same-time ties with `ordering`.
    pub fn with_ordering(ordering: OrderingPolicy) -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, ordering }
    }

    /// Schedules `kind` at absolute time `time`.
    pub fn push(&mut self, time: u64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let rank = self.ordering.rank(kind, seq);
        self.heap.push(Reverse(Event { time, rank, seq, kind }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no event is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::with_ordering(OrderingPolicy::Fifo);
        q.push(20, EventKind::Balance);
        q.push(10, EventKind::Timer(CoreId(0)));
        q.push(10, EventKind::Arrival(SimThreadId(1)));
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(10));
        let first = q.pop().unwrap();
        let second = q.pop().unwrap();
        let third = q.pop().unwrap();
        assert_eq!(first.kind, EventKind::Timer(CoreId(0)));
        assert_eq!(second.kind, EventKind::Arrival(SimThreadId(1)));
        assert_eq!(third.time, 20);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn priority_ranks_balance_then_wakeups_then_timers() {
        let mut q = EventQueue::with_ordering(OrderingPolicy::Priority);
        q.push(10, EventKind::Timer(CoreId(1)));
        q.push(10, EventKind::Timer(CoreId(0)));
        q.push(10, EventKind::Arrival(SimThreadId(1)));
        q.push(10, EventKind::Balance);
        q.push(10, EventKind::SleepDone(SimThreadId(2)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Balance);
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrival(SimThreadId(1)));
        assert_eq!(q.pop().unwrap().kind, EventKind::SleepDone(SimThreadId(2)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Timer(CoreId(0)));
        assert_eq!(q.pop().unwrap().kind, EventKind::Timer(CoreId(1)));
        assert!(q.is_empty());
    }

    #[test]
    fn seeded_ordering_is_a_deterministic_permutation() {
        let drain = |seed: u64| {
            let mut q = EventQueue::with_ordering(OrderingPolicy::Seeded(seed));
            for i in 0..16 {
                q.push(10, EventKind::Arrival(SimThreadId(i)));
            }
            let mut kinds = Vec::new();
            while let Some(e) = q.pop() {
                kinds.push(e.kind);
            }
            kinds
        };
        let a = drain(7);
        assert_eq!(a, drain(7), "same seed must replay the same order");
        assert_eq!(a.len(), 16);
        let mut sorted: Vec<_> = a
            .iter()
            .map(|k| match k {
                EventKind::Arrival(t) => t.0,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>(), "must be a permutation");
        assert_ne!(a, drain(8), "different seeds should usually disagree");
    }

    #[test]
    fn phase_done_tokens_are_part_of_the_event() {
        let mut q = EventQueue::new();
        q.push(5, EventKind::PhaseDone { tid: SimThreadId(0), token: 3 });
        match q.pop().unwrap().kind {
            EventKind::PhaseDone { tid, token } => {
                assert_eq!(tid, SimThreadId(0));
                assert_eq!(token, 3);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
}
