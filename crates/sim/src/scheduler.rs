//! The simulator's scheduler interface and the verified optimistic
//! scheduler built from `sched-core` policies.
//!
//! A [`SimScheduler`] is engine-agnostic: the tick-driven
//! [`crate::engine::Engine`] and the event-driven
//! [`crate::event_engine::EventEngine`] invoke the same two callbacks —
//! [`SimScheduler::place_wakeup`] on every wakeup and
//! [`SimScheduler::balance_round`] every balancing period — at the same
//! simulated times, so one implementation serves both.

use std::sync::Arc;

use sched_core::tracker::{LoadTracker, NrThreadsTracker};
use sched_core::{CoreId, CoreSnapshot, Policy, TaskId};
use sched_topology::{MachineTopology, StealLevel};
use sched_trace::{StealOutcomeKind, TraceEvent, TraceSink};

use crate::queues::CoreQueues;
use crate::thread::{SimThread, SimThreadId};

/// Aggregate outcome of one machine-wide balancing round inside the
/// simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Steal attempts that migrated a thread.
    pub successes: u64,
    /// Steal attempts that chose a victim but migrated nothing (stale
    /// optimistic selection).
    pub failures: u64,
    /// Threads migrated.
    pub migrations: u64,
    /// Threads migrated per steal level, indexed by [`StealLevel::index`].
    pub level_migrations: [u64; 4],
}

impl RoundStats {
    /// Adds another round's counters into this one.
    pub fn merge(&mut self, other: RoundStats) {
        self.successes += other.successes;
        self.failures += other.failures;
        self.migrations += other.migrations;
        for (mine, theirs) in self.level_migrations.iter_mut().zip(other.level_migrations) {
            *mine += theirs;
        }
    }

    /// Records one successful migration across `level`.
    pub fn record_migration(&mut self, level: StealLevel) {
        self.successes += 1;
        self.migrations += 1;
        self.level_migrations[level.index()] += 1;
    }

    /// The per-level counts as a [`sched_metrics::StealLocality`], which
    /// owns the locality-rate arithmetic (one definition for all backends).
    pub fn locality(&self) -> sched_metrics::StealLocality {
        sched_metrics::StealLocality::from_counts(self.level_migrations)
    }
}

/// Distance class between two distinct cores: exact when a topology is
/// known, node-based (same node vs remote) otherwise.
fn steal_level_of(
    topo: Option<&MachineTopology>,
    snapshots: &[CoreSnapshot],
    thief: CoreId,
    victim: CoreId,
) -> StealLevel {
    match topo {
        Some(topo) => topo.steal_level(thief, victim),
        None => {
            if snapshots[thief.0].node == snapshots[victim.0].node {
                StealLevel::SameNode
            } else {
                StealLevel::Remote
            }
        }
    }
}

/// Records the outcome of one simulated steal attempt on the thief's ring,
/// using the engine-published clock ([`TraceSink::record_now`]).  Success
/// carries the per-task [`TraceEvent::Migration`] that parity folding and
/// the sanity checker consume; every failure class in the simulator is a
/// stale optimistic selection, so failures map to
/// [`StealOutcomeKind::RecheckFailed`] (matching how [`RoundStats`] folds
/// them into one `failures` counter).
fn trace_steal(
    trace: &TraceSink,
    thief: CoreId,
    victim: CoreId,
    migrated: Option<(SimThreadId, StealLevel)>,
) {
    if !trace.is_enabled() {
        return;
    }
    match migrated {
        Some((tid, level)) => {
            trace.record_now(
                thief,
                &TraceEvent::StealAttempt {
                    victim: Some(victim),
                    level: Some(level),
                    outcome: StealOutcomeKind::Stole,
                    k: 1,
                    moved: 1,
                },
            );
            trace.record_now(
                thief,
                &TraceEvent::Migration { task: TaskId(tid.0 as u64), from: victim },
            );
        }
        None => trace.record_now(
            thief,
            &TraceEvent::StealAttempt {
                victim: Some(victim),
                level: None,
                outcome: StealOutcomeKind::RecheckFailed,
                k: 1,
                moved: 0,
            },
        ),
    }
}

/// The decisions a scheduler makes inside the simulator.
///
/// The engine owns the mechanism (runqueues, election, preemption, time);
/// the scheduler owns the two policies the paper is about: where waking
/// threads are placed, and how load is balanced between runqueues.
pub trait SimScheduler: Send {
    /// Human-readable name used in experiment tables.
    fn name(&self) -> &'static str;

    /// The load criterion the engine maintains per-core tracked averages
    /// under (updated on every run/sleep/wakeup event).  Defaults to
    /// instantaneous thread counts, which is what every scheduler balanced
    /// on before trackers became pluggable.
    fn tracker(&self) -> Arc<dyn LoadTracker> {
        Arc::new(NrThreadsTracker)
    }

    /// Chooses the core a waking (or newly arrived, unpinned) thread is
    /// enqueued on.  `prev` is the core the thread last ran on, if any.
    fn place_wakeup(
        &mut self,
        queues: &CoreQueues,
        threads: &[SimThread],
        tid: SimThreadId,
        prev: Option<CoreId>,
    ) -> CoreId;

    /// Runs one machine-wide load-balancing round ("load balancing
    /// operations are performed simultaneously on all cores", §3.1),
    /// migrating waiting threads between runqueues.
    fn balance_round(&mut self, queues: &mut CoreQueues, threads: &[SimThread]) -> RoundStats;

    /// Attaches a trace sink so the scheduler narrates its steal decisions
    /// ([`TraceEvent::StealAttempt`] / [`TraceEvent::Migration`]).  The
    /// default ignores it: schedulers without recording still work, they
    /// just leave the steal lane of the trace empty.
    fn set_trace_sink(&mut self, sink: TraceSink) {
        let _ = sink;
    }
}

/// The verified optimistic scheduler: wakeups go to idle cores, balancing is
/// the paper's three-step round driven by a [`Policy`].
pub struct OptimisticScheduler {
    policy: Policy,
    topo: Option<Arc<MachineTopology>>,
    trace: TraceSink,
}

impl OptimisticScheduler {
    /// Creates the scheduler around `policy` (usually [`Policy::simple`]).
    pub fn new(policy: Policy) -> Self {
        OptimisticScheduler { policy, topo: None, trace: TraceSink::disabled() }
    }

    /// Creates the scheduler with a machine topology, enabling exact
    /// per-level attribution of migrations (SMT/LLC/node/remote).
    pub fn with_topology(policy: Policy, topo: Arc<MachineTopology>) -> Self {
        OptimisticScheduler { policy, topo: Some(topo), trace: TraceSink::disabled() }
    }

    /// The policy driving the balancing rounds.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }
}

impl SimScheduler for OptimisticScheduler {
    fn name(&self) -> &'static str {
        "optimistic"
    }

    fn tracker(&self) -> Arc<dyn LoadTracker> {
        Arc::clone(&self.policy.tracker)
    }

    fn place_wakeup(
        &mut self,
        queues: &CoreQueues,
        _threads: &[SimThread],
        _tid: SimThreadId,
        prev: Option<CoreId>,
    ) -> CoreId {
        // Prefer the previous core if it is idle (cache affinity for free),
        // then any idle core, then the least loaded core.
        if let Some(prev) = prev {
            if queues.core(prev).is_idle() {
                return prev;
            }
        }
        if let Some(idle) = queues.cores().iter().find(|c| c.is_idle()) {
            return idle.id;
        }
        queues
            .cores()
            .iter()
            .min_by_key(|c| (c.nr_threads(), c.id))
            .map(|c| c.id)
            .expect("at least one core exists")
    }

    fn balance_round(&mut self, queues: &mut CoreQueues, threads: &[SimThread]) -> RoundStats {
        // Selection phase for every core against ONE shared snapshot: this is
        // the "all cores balance simultaneously" interleaving, so selections
        // made by later cores can be stale and their steals can fail —
        // exactly the optimism of the model.
        let snapshots = queues.snapshots(threads);
        let mut plans: Vec<(CoreId, CoreId)> = Vec::new();
        for thief in queues.cores().iter().map(|c| c.id) {
            let thief_snap = snapshots[thief.0];
            let candidates: Vec<_> = snapshots
                .iter()
                .filter(|s| s.id != thief && self.policy.filter.can_steal(&thief_snap, s))
                .copied()
                .collect();
            if let Some(victim) = self.policy.choice.choose(&thief_snap, &candidates) {
                plans.push((thief, victim));
            }
        }
        // Stealing phase: each planned steal re-checks the filter against the
        // live queues before migrating (Listing 1 line 12).
        let mut stats = RoundStats::default();
        for (thief, victim) in plans {
            let live = queues.snapshots(threads);
            let mut migrated = None;
            if self.policy.filter.can_steal(&live[thief.0], &live[victim.0]) {
                if let Some(tid) = queues.migrate_newest(victim, thief) {
                    let level = steal_level_of(self.topo.as_deref(), &live, thief, victim);
                    stats.record_migration(level);
                    migrated = Some((tid, level));
                }
            }
            if migrated.is_none() {
                stats.failures += 1;
            }
            trace_steal(&self.trace, thief, victim, migrated);
            self.policy.choice.observe(thief, victim, migrated.is_some());
        }
        stats
    }

    fn set_trace_sink(&mut self, sink: TraceSink) {
        self.trace = sink;
    }
}

/// Domain-ordered balancing inside the simulator: the discrete-event mirror
/// of [`sched_core::HierarchicalRound`] and of
/// `sched_rq::MultiQueue::hierarchical_round`, so all three altitudes run
/// the identical domain-ordered stealing.
///
/// Each balancing round runs up to one level-capped pass per [`StealLevel`],
/// innermost first; a pass only admits victims within that distance of
/// their thief, and the round escalates to the next level only while some
/// core is still idle next to an overloaded one.  The final pass is
/// unrestricted, so work conservation is inherited from the flat round.
pub struct HierarchicalScheduler {
    policy: Policy,
    topo: Arc<MachineTopology>,
    trace: TraceSink,
}

impl HierarchicalScheduler {
    /// Creates the scheduler around `policy` for the given machine.
    pub fn new(policy: Policy, topo: Arc<MachineTopology>) -> Self {
        HierarchicalScheduler { policy, topo, trace: TraceSink::disabled() }
    }

    /// One level-capped pass: plan against a shared snapshot, then steal
    /// with the usual re-check.
    fn level_pass(
        &mut self,
        queues: &mut CoreQueues,
        threads: &[SimThread],
        level: StealLevel,
    ) -> RoundStats {
        let snapshots = queues.snapshots(threads);
        let mut plans: Vec<(CoreId, CoreId)> = Vec::new();
        for thief in queues.cores().iter().map(|c| c.id) {
            let thief_snap = snapshots[thief.0];
            let candidates: Vec<_> = snapshots
                .iter()
                .filter(|s| {
                    s.id != thief
                        && self.topo.steal_level(thief, s.id) <= level
                        && self.policy.filter.can_steal(&thief_snap, s)
                })
                .copied()
                .collect();
            if let Some(victim) = self.policy.choice.choose(&thief_snap, &candidates) {
                plans.push((thief, victim));
            }
        }
        let mut stats = RoundStats::default();
        for (thief, victim) in plans {
            let live = queues.snapshots(threads);
            let mut migrated = None;
            if self.policy.filter.can_steal(&live[thief.0], &live[victim.0]) {
                if let Some(tid) = queues.migrate_newest(victim, thief) {
                    let stolen_across = self.topo.steal_level(thief, victim);
                    stats.record_migration(stolen_across);
                    migrated = Some((tid, stolen_across));
                }
            }
            if migrated.is_none() {
                stats.failures += 1;
            }
            trace_steal(&self.trace, thief, victim, migrated);
            self.policy.choice.observe(thief, victim, migrated.is_some());
        }
        stats
    }
}

impl SimScheduler for HierarchicalScheduler {
    fn name(&self) -> &'static str {
        "hierarchical"
    }

    fn tracker(&self) -> Arc<dyn LoadTracker> {
        Arc::clone(&self.policy.tracker)
    }

    fn place_wakeup(
        &mut self,
        queues: &CoreQueues,
        _threads: &[SimThread],
        _tid: SimThreadId,
        prev: Option<CoreId>,
    ) -> CoreId {
        // Prefer the previous core if idle, then the topologically nearest
        // idle core (cache/NUMA affinity), then the least loaded core.
        if let Some(prev) = prev {
            if queues.core(prev).is_idle() {
                return prev;
            }
            if let Some(nearest) = queues
                .cores()
                .iter()
                .filter(|c| c.is_idle() && c.id != prev)
                .min_by_key(|c| (self.topo.steal_level(prev, c.id), c.id))
            {
                return nearest.id;
            }
        }
        if let Some(idle) = queues.cores().iter().find(|c| c.is_idle()) {
            return idle.id;
        }
        queues
            .cores()
            .iter()
            .min_by_key(|c| (c.nr_threads(), c.id))
            .map(|c| c.id)
            .expect("at least one core exists")
    }

    fn balance_round(&mut self, queues: &mut CoreQueues, threads: &[SimThread]) -> RoundStats {
        let mut stats = RoundStats::default();
        for level in StealLevel::ALL {
            if queues.is_work_conserving() {
                break;
            }
            stats.merge(self.level_pass(queues, threads, level));
        }
        stats
    }

    fn set_trace_sink(&mut self, sink: TraceSink) {
        self.trace = sink;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_workloads::{Phase, ThreadSpec};

    fn threads(n: usize) -> Vec<SimThread> {
        (0..n)
            .map(|i| SimThread::new(SimThreadId(i), ThreadSpec::new(vec![Phase::Compute(1)])))
            .collect()
    }

    #[test]
    fn wakeups_prefer_idle_cores() {
        let mut sched = OptimisticScheduler::new(Policy::simple());
        let mut queues = CoreQueues::new(4);
        let table = threads(4);
        queues.core_mut(CoreId(0)).current = Some(SimThreadId(0));
        queues.core_mut(CoreId(1)).current = Some(SimThreadId(1));
        let core = sched.place_wakeup(&queues, &table, SimThreadId(2), Some(CoreId(0)));
        assert_eq!(core, CoreId(2), "the first idle core wins when the previous core is busy");
        let back_home = sched.place_wakeup(&queues, &table, SimThreadId(3), Some(CoreId(3)));
        assert_eq!(back_home, CoreId(3), "an idle previous core is preferred");
    }

    #[test]
    fn wakeups_fall_back_to_least_loaded_core() {
        let mut sched = OptimisticScheduler::new(Policy::simple());
        let mut queues = CoreQueues::new(2);
        let table = threads(4);
        queues.core_mut(CoreId(0)).current = Some(SimThreadId(0));
        queues.enqueue(CoreId(0), SimThreadId(1));
        queues.core_mut(CoreId(1)).current = Some(SimThreadId(2));
        let core = sched.place_wakeup(&queues, &table, SimThreadId(3), None);
        assert_eq!(core, CoreId(1));
    }

    #[test]
    fn balance_round_spreads_a_pileup_and_reports_conflicts() {
        let mut sched = OptimisticScheduler::new(Policy::simple());
        let mut queues = CoreQueues::new(4);
        let table = threads(5);
        // Core 3 runs one thread and queues four; everyone else is idle.
        queues.core_mut(CoreId(3)).current = Some(SimThreadId(0));
        for i in 1..5 {
            queues.enqueue(CoreId(3), SimThreadId(i));
        }
        let stats = sched.balance_round(&mut queues, &table);
        assert!(stats.successes >= 3, "three idle cores should each obtain a thread");
        assert_eq!(queues.total_threads(), 5);
        assert!(queues.is_work_conserving());
    }

    #[test]
    fn balance_round_failures_happen_when_selections_go_stale() {
        let mut sched = OptimisticScheduler::new(Policy::simple());
        let mut queues = CoreQueues::new(3);
        let table = threads(2);
        // One victim with exactly two threads, two idle thieves: one must fail.
        queues.core_mut(CoreId(2)).current = Some(SimThreadId(0));
        queues.enqueue(CoreId(2), SimThreadId(1));
        let stats = sched.balance_round(&mut queues, &table);
        assert_eq!(stats.successes, 1);
        assert_eq!(stats.failures, 1);
    }

    /// 2 sockets × 2 cores × SMT-2 = 8 CPUs; cpu0's sibling is cpu1.
    fn numa_topo() -> Arc<MachineTopology> {
        Arc::new(
            sched_topology::TopologyBuilder::new().sockets(2).cores_per_socket(2).smt(2).build(),
        )
    }

    #[test]
    fn flat_round_attributes_migration_levels() {
        let topo = numa_topo();
        let mut sched = OptimisticScheduler::with_topology(Policy::simple(), Arc::clone(&topo));
        let mut queues = CoreQueues::with_topology(&topo);
        let table = threads(4);
        queues.core_mut(CoreId(0)).current = Some(SimThreadId(0));
        for i in 1..4 {
            queues.enqueue(CoreId(0), SimThreadId(i));
        }
        let stats = sched.balance_round(&mut queues, &table);
        assert!(stats.migrations >= 1);
        assert_eq!(stats.level_migrations.iter().sum::<u64>(), stats.migrations);
    }

    #[test]
    fn hierarchical_round_keeps_local_imbalances_local() {
        let topo = numa_topo();
        let mut sched = HierarchicalScheduler::new(Policy::simple(), Arc::clone(&topo));
        let mut queues = CoreQueues::with_topology(&topo);
        let table = threads(2);
        // cpu0 runs one thread and queues one; its SMT sibling must take it
        // without any cross-node traffic.
        queues.core_mut(CoreId(0)).current = Some(SimThreadId(0));
        queues.enqueue(CoreId(0), SimThreadId(1));
        let stats = sched.balance_round(&mut queues, &table);
        assert_eq!(stats.migrations, 1);
        assert_eq!(stats.level_migrations[StealLevel::SmtSibling.index()], 1);
        assert_eq!(stats.locality().remote_rate(), 0.0);
        assert!(queues.is_work_conserving());
    }

    #[test]
    fn hierarchical_round_escalates_across_nodes_when_needed() {
        let topo = numa_topo();
        let mut sched = HierarchicalScheduler::new(Policy::simple(), Arc::clone(&topo));
        let mut queues = CoreQueues::with_topology(&topo);
        let table = threads(12);
        // All 12 threads on node 0's cpu0: node 1 can only be fed by
        // cross-node steals, but local passes still run first.
        queues.core_mut(CoreId(0)).current = Some(SimThreadId(0));
        for i in 1..12 {
            queues.enqueue(CoreId(0), SimThreadId(i));
        }
        let mut total = RoundStats::default();
        for _ in 0..16 {
            if queues.is_work_conserving() {
                break;
            }
            total.merge(sched.balance_round(&mut queues, &table));
        }
        assert!(queues.is_work_conserving());
        assert_eq!(queues.total_threads(), 12);
        assert!(total.level_migrations[StealLevel::Remote.index()] >= 1);
        assert!(
            total.level_migrations[StealLevel::SmtSibling.index()] >= 1,
            "the sibling pass must have contributed before escalation"
        );
    }

    #[test]
    fn hierarchical_wakeups_prefer_topologically_near_cores() {
        let topo = numa_topo();
        let mut sched = HierarchicalScheduler::new(Policy::simple(), Arc::clone(&topo));
        let mut queues = CoreQueues::with_topology(&topo);
        let table = threads(4);
        // cpu0 busy; its SMT sibling cpu1 idle; remote cpus idle too: the
        // wakeup that last ran on cpu0 must land on cpu1, not on cpu4.
        queues.core_mut(CoreId(0)).current = Some(SimThreadId(0));
        let core = sched.place_wakeup(&queues, &table, SimThreadId(1), Some(CoreId(0)));
        assert_eq!(core, CoreId(1));
        // An idle previous core still wins outright.
        let back = sched.place_wakeup(&queues, &table, SimThreadId(2), Some(CoreId(6)));
        assert_eq!(back, CoreId(6));
    }
}
