//! The simulator's scheduler interface and the verified optimistic
//! scheduler built from `sched-core` policies.

use sched_core::{CoreId, Policy};

use crate::queues::CoreQueues;
use crate::thread::{SimThread, SimThreadId};

/// Aggregate outcome of one machine-wide balancing round inside the
/// simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Steal attempts that migrated a thread.
    pub successes: u64,
    /// Steal attempts that chose a victim but migrated nothing (stale
    /// optimistic selection).
    pub failures: u64,
    /// Threads migrated.
    pub migrations: u64,
}

impl RoundStats {
    /// Adds another round's counters into this one.
    pub fn merge(&mut self, other: RoundStats) {
        self.successes += other.successes;
        self.failures += other.failures;
        self.migrations += other.migrations;
    }
}

/// The decisions a scheduler makes inside the simulator.
///
/// The engine owns the mechanism (runqueues, election, preemption, time);
/// the scheduler owns the two policies the paper is about: where waking
/// threads are placed, and how load is balanced between runqueues.
pub trait SimScheduler: Send {
    /// Human-readable name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Chooses the core a waking (or newly arrived, unpinned) thread is
    /// enqueued on.  `prev` is the core the thread last ran on, if any.
    fn place_wakeup(
        &mut self,
        queues: &CoreQueues,
        threads: &[SimThread],
        tid: SimThreadId,
        prev: Option<CoreId>,
    ) -> CoreId;

    /// Runs one machine-wide load-balancing round ("load balancing
    /// operations are performed simultaneously on all cores", §3.1),
    /// migrating waiting threads between runqueues.
    fn balance_round(&mut self, queues: &mut CoreQueues, threads: &[SimThread]) -> RoundStats;
}

/// The verified optimistic scheduler: wakeups go to idle cores, balancing is
/// the paper's three-step round driven by a [`Policy`].
pub struct OptimisticScheduler {
    policy: Policy,
}

impl OptimisticScheduler {
    /// Creates the scheduler around `policy` (usually [`Policy::simple`]).
    pub fn new(policy: Policy) -> Self {
        OptimisticScheduler { policy }
    }

    /// The policy driving the balancing rounds.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }
}

impl SimScheduler for OptimisticScheduler {
    fn name(&self) -> &'static str {
        "optimistic"
    }

    fn place_wakeup(
        &mut self,
        queues: &CoreQueues,
        _threads: &[SimThread],
        _tid: SimThreadId,
        prev: Option<CoreId>,
    ) -> CoreId {
        // Prefer the previous core if it is idle (cache affinity for free),
        // then any idle core, then the least loaded core.
        if let Some(prev) = prev {
            if queues.core(prev).is_idle() {
                return prev;
            }
        }
        if let Some(idle) = queues.cores().iter().find(|c| c.is_idle()) {
            return idle.id;
        }
        queues
            .cores()
            .iter()
            .min_by_key(|c| (c.nr_threads(), c.id))
            .map(|c| c.id)
            .expect("at least one core exists")
    }

    fn balance_round(&mut self, queues: &mut CoreQueues, threads: &[SimThread]) -> RoundStats {
        // Selection phase for every core against ONE shared snapshot: this is
        // the "all cores balance simultaneously" interleaving, so selections
        // made by later cores can be stale and their steals can fail —
        // exactly the optimism of the model.
        let snapshots = queues.snapshots(threads);
        let mut plans: Vec<(CoreId, CoreId)> = Vec::new();
        for thief in queues.cores().iter().map(|c| c.id) {
            let thief_snap = snapshots[thief.0];
            let candidates: Vec<_> = snapshots
                .iter()
                .filter(|s| s.id != thief && self.policy.filter.can_steal(&thief_snap, s))
                .copied()
                .collect();
            if let Some(victim) = self.policy.choice.choose(&thief_snap, &candidates) {
                plans.push((thief, victim));
            }
        }
        // Stealing phase: each planned steal re-checks the filter against the
        // live queues before migrating (Listing 1 line 12).
        let mut stats = RoundStats::default();
        for (thief, victim) in plans {
            let live = queues.snapshots(threads);
            if self.policy.filter.can_steal(&live[thief.0], &live[victim.0]) {
                if queues.migrate_newest(victim, thief).is_some() {
                    stats.successes += 1;
                    stats.migrations += 1;
                } else {
                    stats.failures += 1;
                }
            } else {
                stats.failures += 1;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_workloads::{Phase, ThreadSpec};

    fn threads(n: usize) -> Vec<SimThread> {
        (0..n)
            .map(|i| SimThread::new(SimThreadId(i), ThreadSpec::new(vec![Phase::Compute(1)])))
            .collect()
    }

    #[test]
    fn wakeups_prefer_idle_cores() {
        let mut sched = OptimisticScheduler::new(Policy::simple());
        let mut queues = CoreQueues::new(4);
        let table = threads(4);
        queues.core_mut(CoreId(0)).current = Some(SimThreadId(0));
        queues.core_mut(CoreId(1)).current = Some(SimThreadId(1));
        let core = sched.place_wakeup(&queues, &table, SimThreadId(2), Some(CoreId(0)));
        assert_eq!(core, CoreId(2), "the first idle core wins when the previous core is busy");
        let back_home = sched.place_wakeup(&queues, &table, SimThreadId(3), Some(CoreId(3)));
        assert_eq!(back_home, CoreId(3), "an idle previous core is preferred");
    }

    #[test]
    fn wakeups_fall_back_to_least_loaded_core() {
        let mut sched = OptimisticScheduler::new(Policy::simple());
        let mut queues = CoreQueues::new(2);
        let table = threads(4);
        queues.core_mut(CoreId(0)).current = Some(SimThreadId(0));
        queues.enqueue(CoreId(0), SimThreadId(1));
        queues.core_mut(CoreId(1)).current = Some(SimThreadId(2));
        let core = sched.place_wakeup(&queues, &table, SimThreadId(3), None);
        assert_eq!(core, CoreId(1));
    }

    #[test]
    fn balance_round_spreads_a_pileup_and_reports_conflicts() {
        let mut sched = OptimisticScheduler::new(Policy::simple());
        let mut queues = CoreQueues::new(4);
        let table = threads(5);
        // Core 3 runs one thread and queues four; everyone else is idle.
        queues.core_mut(CoreId(3)).current = Some(SimThreadId(0));
        for i in 1..5 {
            queues.enqueue(CoreId(3), SimThreadId(i));
        }
        let stats = sched.balance_round(&mut queues, &table);
        assert!(stats.successes >= 3, "three idle cores should each obtain a thread");
        assert_eq!(queues.total_threads(), 5);
        assert!(queues.is_work_conserving());
    }

    #[test]
    fn balance_round_failures_happen_when_selections_go_stale() {
        let mut sched = OptimisticScheduler::new(Policy::simple());
        let mut queues = CoreQueues::new(3);
        let table = threads(2);
        // One victim with exactly two threads, two idle thieves: one must fail.
        queues.core_mut(CoreId(2)).current = Some(SimThreadId(0));
        queues.enqueue(CoreId(2), SimThreadId(1));
        let stats = sched.balance_round(&mut queues, &table);
        assert_eq!(stats.successes, 1);
        assert_eq!(stats.failures, 1);
    }
}
