//! Simulation configuration.

use crate::event::OrderingPolicy;

/// Static parameters of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of simulated cores (ignored when a topology is supplied).
    pub nr_cores: usize,
    /// Preemption timeslice, in nanoseconds (round-robin within a core).
    pub timeslice_ns: u64,
    /// Load-balancing period, in nanoseconds.
    ///
    /// The paper notes that "in CFS, load balancing operations are performed
    /// simultaneously on all cores every 4ms" (§3.1); the default matches.
    pub balance_period_ns: u64,
    /// Hard simulation horizon, in nanoseconds; runs that do not finish by
    /// then are truncated (and reported as unfinished).
    pub horizon_ns: u64,
    /// Tie-break policy among simultaneous events.
    ///
    /// [`OrderingPolicy::Priority`] is the default: it is the only policy
    /// under which the tick engine and the event engine agree tie-for-tie
    /// (FIFO ties depend on push order, which differs once idle timer ticks
    /// are elided). [`OrderingPolicy::Seeded`] is the verification mode.
    pub ordering: OrderingPolicy,
    /// Optional hard cap on processed events; runs hitting the cap stop and
    /// are reported as unfinished. `None` means unbounded.
    pub event_budget: Option<u64>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            nr_cores: 8,
            timeslice_ns: 1_000_000,
            balance_period_ns: 4_000_000,
            horizon_ns: 30_000_000_000,
            ordering: OrderingPolicy::Priority,
            event_budget: None,
        }
    }
}

impl SimConfig {
    /// Creates the default configuration with `nr_cores` cores.
    pub fn with_cores(nr_cores: usize) -> Self {
        SimConfig { nr_cores, ..Default::default() }
    }

    /// Overrides the balancing period.
    pub fn balance_period(mut self, ns: u64) -> Self {
        assert!(ns > 0, "the balancing period must be positive");
        self.balance_period_ns = ns;
        self
    }

    /// Overrides the preemption timeslice.
    pub fn timeslice(mut self, ns: u64) -> Self {
        assert!(ns > 0, "the timeslice must be positive");
        self.timeslice_ns = ns;
        self
    }

    /// Overrides the horizon.
    pub fn horizon(mut self, ns: u64) -> Self {
        self.horizon_ns = ns;
        self
    }

    /// Overrides the same-time event ordering policy.
    pub fn with_ordering(mut self, ordering: OrderingPolicy) -> Self {
        self.ordering = ordering;
        self
    }

    /// Caps the number of processed events.
    pub fn with_event_budget(mut self, events: u64) -> Self {
        self.event_budget = Some(events);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_cfs_period() {
        let c = SimConfig::default();
        assert_eq!(c.balance_period_ns, 4_000_000);
        assert!(c.timeslice_ns <= c.balance_period_ns);
        assert_eq!(c.ordering, OrderingPolicy::Priority);
        assert_eq!(c.event_budget, None);
    }

    #[test]
    fn builders_override_fields() {
        let c = SimConfig::with_cores(64)
            .balance_period(8_000_000)
            .timeslice(500_000)
            .horizon(1)
            .with_ordering(OrderingPolicy::Seeded(9))
            .with_event_budget(100);
        assert_eq!(c.nr_cores, 64);
        assert_eq!(c.balance_period_ns, 8_000_000);
        assert_eq!(c.timeslice_ns, 500_000);
        assert_eq!(c.horizon_ns, 1);
        assert_eq!(c.ordering, OrderingPolicy::Seeded(9));
        assert_eq!(c.event_budget, Some(100));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_period_is_rejected() {
        let _ = SimConfig::default().balance_period(0);
    }
}
