//! A CFS-like baseline scheduler with injectable "wasted cores" bugs.
//!
//! The paper's motivation ("The default Linux scheduler (CFS) has been shown
//! to leave cores idle while threads are waiting in runqueues", §1) comes
//! from the Lozi et al. EuroSys'16 study.  This module reproduces the two
//! bug families relevant to load balancing so that the verified optimistic
//! scheduler has a realistic baseline to be compared against:
//!
//! * **overload-on-wakeup** — wakeups only consider the waker's vicinity
//!   (previous core / same node) and stack runnable threads there even when
//!   remote cores are idle;
//! * **group imbalance** — the load balancer compares *average* group loads,
//!   so a node whose average looks fine never gets help even though one of
//!   its cores is heavily overloaded.
//!
//! Without the bug flags the baseline behaves like a sane (but unverified)
//! hierarchical balancer, which is useful as a sanity reference.

use sched_core::CoreId;
use sched_topology::NodeId;

use crate::queues::CoreQueues;
use crate::scheduler::{RoundStats, SimScheduler};
use crate::thread::{SimThread, SimThreadId};

/// Which of the documented CFS bugs are injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CfsBugs {
    /// Wakeup placement ignores idle cores outside the waker's vicinity.
    pub overload_on_wakeup: bool,
    /// Inter-node balancing compares group averages instead of spotting
    /// overloaded cores.
    pub group_imbalance: bool,
}

impl CfsBugs {
    /// No bugs: the sane baseline.
    pub fn none() -> Self {
        CfsBugs::default()
    }

    /// Both bugs enabled: the configuration used by E9/E10.
    pub fn all() -> Self {
        CfsBugs { overload_on_wakeup: true, group_imbalance: true }
    }
}

/// The CFS-like baseline scheduler.
#[derive(Debug, Clone)]
pub struct CfsLikeScheduler {
    bugs: CfsBugs,
    /// Minimum per-core thread imbalance before stealing (CFS's
    /// `imbalance_pct`-style hysteresis, expressed in threads).
    imbalance_threshold: u64,
}

impl CfsLikeScheduler {
    /// Creates the baseline with the given bug set.
    pub fn new(bugs: CfsBugs) -> Self {
        CfsLikeScheduler { bugs, imbalance_threshold: 2 }
    }

    /// The injected bug set.
    pub fn bugs(&self) -> CfsBugs {
        self.bugs
    }

    fn node_average_load(queues: &CoreQueues, node: NodeId) -> f64 {
        let cores: Vec<_> = queues.cores().iter().filter(|c| c.node == node).collect();
        if cores.is_empty() {
            return 0.0;
        }
        cores.iter().map(|c| c.nr_threads()).sum::<u64>() as f64 / cores.len() as f64
    }
}

impl SimScheduler for CfsLikeScheduler {
    fn name(&self) -> &'static str {
        match (self.bugs.overload_on_wakeup, self.bugs.group_imbalance) {
            (false, false) => "cfs_like",
            (true, false) => "cfs_like+wakeup_bug",
            (false, true) => "cfs_like+group_bug",
            (true, true) => "cfs_like+bugs",
        }
    }

    fn place_wakeup(
        &mut self,
        queues: &CoreQueues,
        _threads: &[SimThread],
        _tid: SimThreadId,
        prev: Option<CoreId>,
    ) -> CoreId {
        if self.bugs.overload_on_wakeup {
            // The buggy wake_affine path: stay on the previous core (or the
            // first core of the machine), regardless of how loaded it is and
            // regardless of idle cores elsewhere.
            return prev.unwrap_or(CoreId(0));
        }
        // Sane behaviour: previous core if idle, otherwise the idlest core of
        // the whole machine.
        if let Some(prev) = prev {
            if queues.core(prev).is_idle() {
                return prev;
            }
        }
        queues
            .cores()
            .iter()
            .min_by_key(|c| (c.nr_threads(), c.id))
            .map(|c| c.id)
            .expect("at least one core exists")
    }

    fn balance_round(&mut self, queues: &mut CoreQueues, threads: &[SimThread]) -> RoundStats {
        let _ = threads;
        let mut stats = RoundStats::default();
        let core_ids: Vec<CoreId> = queues.cores().iter().map(|c| c.id).collect();
        for thief in core_ids {
            // Find the busiest core (optionally filtered through the buggy
            // group-average comparison).
            let thief_node = queues.core(thief).node;
            let thief_load = queues.core(thief).nr_threads();

            if self.bugs.group_imbalance {
                // The buggy path: compare node averages.  Unless some remote
                // node's *average* load exceeds ours by strictly more than one
                // full thread, conclude the machine is balanced and keep the
                // balancing node-local — even if a single remote core is
                // drowning.  An overloaded core surrounded by idle siblings
                // is exactly what this averaging hides.
                let my_avg = Self::node_average_load(queues, thief_node);
                let busiest_remote_avg = queues
                    .cores()
                    .iter()
                    .map(|c| c.node)
                    .filter(|&n| n != thief_node)
                    .map(|n| Self::node_average_load(queues, n))
                    .fold(0.0f64, f64::max);
                if busiest_remote_avg <= my_avg + 1.0 {
                    // Still allow stealing inside our own node.
                    let local_busiest = queues
                        .cores()
                        .iter()
                        .filter(|c| c.node == thief_node && c.id != thief)
                        .max_by_key(|c| c.nr_threads())
                        .map(|c| (c.id, c.nr_threads()));
                    if let Some((victim, load)) = local_busiest {
                        if load >= thief_load + self.imbalance_threshold {
                            if queues.migrate_newest(victim, thief).is_some() {
                                stats.successes += 1;
                                stats.migrations += 1;
                            } else {
                                stats.failures += 1;
                            }
                        }
                    }
                    continue;
                }
            }

            let busiest = queues
                .cores()
                .iter()
                .filter(|c| c.id != thief)
                .max_by_key(|c| c.nr_threads())
                .map(|c| (c.id, c.nr_threads()));
            if let Some((victim, load)) = busiest {
                if load >= thief_load + self.imbalance_threshold {
                    if queues.migrate_newest(victim, thief).is_some() {
                        stats.successes += 1;
                        stats.migrations += 1;
                    } else {
                        stats.failures += 1;
                    }
                }
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_workloads::{Phase, ThreadSpec};

    fn threads(n: usize) -> Vec<SimThread> {
        (0..n)
            .map(|i| SimThread::new(SimThreadId(i), ThreadSpec::new(vec![Phase::Compute(1)])))
            .collect()
    }

    fn two_node_queues() -> CoreQueues {
        let topo = sched_topology::TopologyBuilder::new().sockets(2).cores_per_socket(4).build();
        CoreQueues::with_topology(&topo)
    }

    #[test]
    fn buggy_wakeup_stacks_threads_on_the_previous_core() {
        let mut sched =
            CfsLikeScheduler::new(CfsBugs { overload_on_wakeup: true, ..CfsBugs::none() });
        let mut queues = CoreQueues::new(4);
        let table = threads(3);
        queues.core_mut(CoreId(1)).current = Some(SimThreadId(0));
        queues.enqueue(CoreId(1), SimThreadId(1));
        // Despite cores 0, 2 and 3 being idle, the waking thread lands on
        // its busy previous core.
        let core = sched.place_wakeup(&queues, &table, SimThreadId(2), Some(CoreId(1)));
        assert_eq!(core, CoreId(1));
        assert_eq!(sched.name(), "cfs_like+wakeup_bug");
    }

    #[test]
    fn sane_wakeup_finds_an_idle_core() {
        let mut sched = CfsLikeScheduler::new(CfsBugs::none());
        let mut queues = CoreQueues::new(4);
        let table = threads(3);
        queues.core_mut(CoreId(1)).current = Some(SimThreadId(0));
        let core = sched.place_wakeup(&queues, &table, SimThreadId(2), Some(CoreId(1)));
        assert_eq!(core, CoreId(0));
    }

    #[test]
    fn group_imbalance_bug_leaves_remote_overload_unattended() {
        let mut sched = CfsLikeScheduler::new(CfsBugs { group_imbalance: true, ..CfsBugs::none() });
        let mut queues = two_node_queues();
        let table = threads(4);
        // Node 1 (cores 4..8): one core holds 4 threads, the rest are idle,
        // so the node average is only 1.0 — the bug hides the overload.
        queues.core_mut(CoreId(4)).current = Some(SimThreadId(0));
        for i in 1..4 {
            queues.enqueue(CoreId(4), SimThreadId(i));
        }
        let stats = sched.balance_round(&mut queues, &table);
        // Idle cores on node 0 never steal (cross-node averages look even);
        // only node-1-local cores may help.
        assert!(queues.core(CoreId(0)).is_idle());
        assert!(!queues.is_work_conserving() || stats.successes > 0);
        assert_eq!(sched.bugs(), CfsBugs { group_imbalance: true, overload_on_wakeup: false });
    }

    #[test]
    fn sane_baseline_does_spread_the_load() {
        let mut sched = CfsLikeScheduler::new(CfsBugs::none());
        let mut queues = two_node_queues();
        let table = threads(5);
        queues.core_mut(CoreId(4)).current = Some(SimThreadId(0));
        for i in 1..5 {
            queues.enqueue(CoreId(4), SimThreadId(i));
        }
        let stats = sched.balance_round(&mut queues, &table);
        assert!(stats.successes >= 3);
        assert_eq!(queues.total_threads(), 5);
    }
}
