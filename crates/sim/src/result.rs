//! Results of one simulation run.

use sched_metrics::{IdleAccounting, LatencyRecorder};

use crate::scheduler::RoundStats;

/// Everything measured during one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Name of the scheduler that produced the run.
    pub scheduler: &'static str,
    /// Name of the workload.
    pub workload: String,
    /// Time at which the last thread finished (or the horizon, if truncated).
    pub makespan_ns: u64,
    /// Whether every thread finished before the horizon.
    pub finished: bool,
    /// Number of completed compute phases ("operations" / transactions).
    pub operations: u64,
    /// Number of discrete events the engine processed to produce the run —
    /// the cost metric the event-driven engine optimises.
    pub events_processed: u64,
    /// Per-core busy / benign-idle / violating-idle accounting.
    pub idle: IdleAccounting,
    /// Scheduling latency (runnable → running) distribution.
    pub latency: LatencyRecorder,
    /// Aggregated balancing outcomes.
    pub balance: RoundStats,
}

impl SimResult {
    /// Operations per second of simulated time.
    pub fn throughput_ops_per_sec(&self) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            self.operations as f64 / (self.makespan_ns as f64 / 1e9)
        }
    }

    /// Fraction of core-time spent idle while some core was overloaded — the
    /// quantity a work-conserving scheduler keeps near zero.
    pub fn violating_idle_fraction(&self) -> f64 {
        self.idle.violation_fraction()
    }

    /// Makespan in milliseconds (convenience for tables).
    pub fn makespan_ms(&self) -> f64 {
        self.makespan_ns as f64 / 1e6
    }

    /// Slowdown of this run relative to another run of the same workload.
    pub fn slowdown_vs(&self, baseline: &SimResult) -> f64 {
        if baseline.makespan_ns == 0 {
            return 0.0;
        }
        self.makespan_ns as f64 / baseline.makespan_ns as f64
    }

    /// Throughput of this run relative to another run (1.0 = equal).
    pub fn relative_throughput(&self, baseline: &SimResult) -> f64 {
        let base = baseline.throughput_ops_per_sec();
        if base == 0.0 {
            return 0.0;
        }
        self.throughput_ops_per_sec() / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(makespan_ns: u64, operations: u64) -> SimResult {
        SimResult {
            scheduler: "test",
            workload: "w".into(),
            makespan_ns,
            finished: true,
            operations,
            events_processed: 0,
            idle: IdleAccounting::new(1),
            latency: LatencyRecorder::new(),
            balance: RoundStats::default(),
        }
    }

    #[test]
    fn throughput_is_ops_per_second() {
        let r = result(2_000_000_000, 100);
        assert!((r.throughput_ops_per_sec() - 50.0).abs() < 1e-9);
        assert_eq!(result(0, 10).throughput_ops_per_sec(), 0.0);
    }

    #[test]
    fn slowdown_and_relative_throughput() {
        let fast = result(1_000_000_000, 100);
        let slow = result(3_000_000_000, 100);
        assert!((slow.slowdown_vs(&fast) - 3.0).abs() < 1e-9);
        assert!((slow.relative_throughput(&fast) - (1.0 / 3.0)).abs() < 1e-9);
        assert_eq!(slow.makespan_ms(), 3000.0);
    }
}
