//! Per-core runqueues as seen by the simulator.

use std::collections::VecDeque;

use sched_core::tracker::{LoadTracker, TrackedLoad};
use sched_core::{CoreId, CoreSnapshot, LoadMetric};
use sched_topology::{MachineTopology, NodeId};

use crate::thread::{SimThread, SimThreadId};

/// One simulated core: the running thread plus a FIFO runqueue of waiting
/// thread ids.
#[derive(Debug, Clone)]
pub struct SimCore {
    /// Identity of the core.
    pub id: CoreId,
    /// NUMA node of the core.
    pub node: NodeId,
    /// The thread currently running, if any.
    pub current: Option<SimThreadId>,
    /// Threads waiting to run, oldest first.
    pub ready: VecDeque<SimThreadId>,
    /// The tracker-maintained load average, updated by the engine on every
    /// run/sleep/wakeup event.
    pub tracked: TrackedLoad,
}

impl SimCore {
    /// Number of threads on the core (running plus waiting).
    pub fn nr_threads(&self) -> u64 {
        self.ready.len() as u64 + u64::from(self.current.is_some())
    }

    /// Returns `true` if the core has no work.
    pub fn is_idle(&self) -> bool {
        self.current.is_none() && self.ready.is_empty()
    }

    /// Returns `true` if the core has two or more threads.
    pub fn is_overloaded(&self) -> bool {
        self.nr_threads() >= 2
    }
}

/// The runqueues of every simulated core.
#[derive(Debug, Clone)]
pub struct CoreQueues {
    cores: Vec<SimCore>,
    /// When enabled, records every core whose runqueue a mutation touched.
    /// The event engine wraps `balance_round` in it so only cores the
    /// scheduler actually moved work between need settling afterwards.
    mutation_log: Option<Vec<CoreId>>,
}

impl CoreQueues {
    /// Creates `nr_cores` idle cores on node 0.
    pub fn new(nr_cores: usize) -> Self {
        let cores = (0..nr_cores)
            .map(|i| SimCore {
                id: CoreId(i),
                node: NodeId(0),
                current: None,
                ready: VecDeque::new(),
                tracked: TrackedLoad::default(),
            })
            .collect();
        CoreQueues { cores, mutation_log: None }
    }

    /// Creates one idle core per CPU of `topo`, with matching nodes.
    pub fn with_topology(topo: &MachineTopology) -> Self {
        let cores = topo
            .cpus()
            .iter()
            .map(|c| SimCore {
                id: c.id,
                node: c.node,
                current: None,
                ready: VecDeque::new(),
                tracked: TrackedLoad::default(),
            })
            .collect();
        CoreQueues { cores, mutation_log: None }
    }

    /// Starts recording the cores mutated by subsequent queue operations.
    pub fn enable_mutation_log(&mut self) {
        self.mutation_log = Some(Vec::new());
    }

    /// Stops recording and returns the mutated cores, deduplicated, in id
    /// order.
    pub fn drain_mutation_log(&mut self) -> Vec<CoreId> {
        let mut log = self.mutation_log.take().unwrap_or_default();
        log.sort_unstable_by_key(|c| c.0);
        log.dedup();
        log
    }

    fn log_mutation(&mut self, core: CoreId) {
        if let Some(log) = &mut self.mutation_log {
            log.push(core);
        }
    }

    /// Number of cores.
    pub fn nr_cores(&self) -> usize {
        self.cores.len()
    }

    /// Immutable access to one core.
    pub fn core(&self, id: CoreId) -> &SimCore {
        &self.cores[id.0]
    }

    /// Mutable access to one core.
    pub fn core_mut(&mut self, id: CoreId) -> &mut SimCore {
        &mut self.cores[id.0]
    }

    /// All cores in id order.
    pub fn cores(&self) -> &[SimCore] {
        &self.cores
    }

    /// Per-core thread counts.
    pub fn loads(&self) -> Vec<u64> {
        self.cores.iter().map(SimCore::nr_threads).collect()
    }

    /// Returns `true` if any core is overloaded.
    pub fn any_overloaded(&self) -> bool {
        self.cores.iter().any(SimCore::is_overloaded)
    }

    /// Returns `true` if no core is idle while another is overloaded.
    pub fn is_work_conserving(&self) -> bool {
        let any_idle = self.cores.iter().any(SimCore::is_idle);
        !(any_idle && self.any_overloaded())
    }

    /// Appends `tid` to `core`'s runqueue (it does not start running; the
    /// engine elects runnable threads explicitly).
    pub fn enqueue(&mut self, core: CoreId, tid: SimThreadId) {
        self.cores[core.0].ready.push_back(tid);
        self.log_mutation(core);
    }

    /// Removes `tid` from `core`'s runqueue, returning `true` if it was
    /// there.
    pub fn remove_ready(&mut self, core: CoreId, tid: SimThreadId) -> bool {
        let q = &mut self.cores[core.0].ready;
        if let Some(pos) = q.iter().position(|&t| t == tid) {
            q.remove(pos);
            self.log_mutation(core);
            true
        } else {
            false
        }
    }

    /// Pops the oldest waiting thread of `core`.
    pub fn pop_ready(&mut self, core: CoreId) -> Option<SimThreadId> {
        let popped = self.cores[core.0].ready.pop_front();
        if popped.is_some() {
            self.log_mutation(core);
        }
        popped
    }

    /// Steals the most recently queued waiting thread of `from` and appends
    /// it to `to`'s runqueue, returning its id.
    pub fn migrate_newest(&mut self, from: CoreId, to: CoreId) -> Option<SimThreadId> {
        assert_ne!(from, to, "a core cannot steal from itself");
        let tid = self.cores[from.0].ready.pop_back()?;
        self.cores[to.0].ready.push_back(tid);
        self.log_mutation(from);
        self.log_mutation(to);
        Some(tid)
    }

    /// Weighted load of one core, with weights taken from the thread table.
    pub fn weighted_load(&self, core: CoreId, threads: &[SimThread]) -> u64 {
        let core = &self.cores[core.0];
        let cur = core.current.map_or(0, |tid| threads[tid.0].weight().raw());
        cur + core.ready.iter().map(|&tid| threads[tid.0].weight().raw()).sum::<u64>()
    }

    /// Folds one core's instantaneous load (under `tracker`'s base metric)
    /// into its tracked average, as observed at `now_ns`.
    pub fn touch(
        &mut self,
        core: CoreId,
        now_ns: u64,
        tracker: &dyn LoadTracker,
        threads: &[SimThread],
    ) {
        let inst = match tracker.base() {
            LoadMetric::Weighted => self.weighted_load(core, threads),
            _ => self.cores[core.0].nr_threads(),
        };
        tracker.update(&mut self.cores[core.0].tracked, now_ns, inst);
    }

    /// [`CoreQueues::touch`] for every core — the pre-balance tick that
    /// decays every tracked load to the current time.
    pub fn touch_all(&mut self, now_ns: u64, tracker: &dyn LoadTracker, threads: &[SimThread]) {
        for core in 0..self.cores.len() {
            self.touch(CoreId(core), now_ns, tracker, threads);
        }
    }

    /// Replays the balance-grid folds a core missed while it was off the
    /// calendar, up to and including a grid point at `now_ns` itself (the
    /// machine-wide balance fold fires before same-time wakeups).
    ///
    /// Decay is linearly interpolated within a half-life, so folds do not
    /// compose: one update over `k` periods is not `k` updates over one
    /// period.  The tick engine folds every core at every balance tick
    /// (`touch_all`); a lazily maintained core must therefore replay those
    /// folds one grid point at a time — with the pre-mutation instantaneous
    /// load, so call this *before* mutating the core at `now_ns`.  Once a
    /// fold stops changing the tracked value the remaining folds are
    /// identical, so the replay jumps straight to the last grid point.
    pub fn catch_up(
        &mut self,
        core: CoreId,
        now_ns: u64,
        balance_period_ns: u64,
        tracker: &dyn LoadTracker,
        threads: &[SimThread],
    ) {
        if !tracker.is_decayed() {
            // Elapsed-insensitive trackers: one fold at `now_ns` (done by
            // the caller) is identical to folding at every grid point.
            return;
        }
        let inst = match tracker.base() {
            LoadMetric::Weighted => self.weighted_load(core, threads),
            _ => self.cores[core.0].nr_threads(),
        };
        let last = self.cores[core.0].tracked.last_update_ns;
        let mut grid = (last / balance_period_ns + 1) * balance_period_ns;
        while grid <= now_ns {
            let before = self.cores[core.0].tracked.scaled;
            tracker.update(&mut self.cores[core.0].tracked, grid, inst);
            if self.cores[core.0].tracked.scaled == before {
                // Fixed point: every remaining period-sized fold leaves the
                // value unchanged; only the timestamp advances.
                let final_grid = now_ns / balance_period_ns * balance_period_ns;
                if final_grid > grid {
                    self.cores[core.0].tracked.last_update_ns = final_grid;
                }
                break;
            }
            grid += balance_period_ns;
        }
    }

    /// Read-only load snapshots of every core, with weights taken from the
    /// thread table — the selection-phase view handed to `sched-core`
    /// policies.
    pub fn snapshots(&self, threads: &[SimThread]) -> Vec<CoreSnapshot> {
        self.cores
            .iter()
            .map(|core| {
                let mut weighted = 0u64;
                let mut lightest: Option<u64> = None;
                if let Some(cur) = core.current {
                    weighted += threads[cur.0].weight().raw();
                }
                for &tid in &core.ready {
                    let w = threads[tid.0].weight().raw();
                    weighted += w;
                    lightest = Some(lightest.map_or(w, |l: u64| l.min(w)));
                }
                CoreSnapshot {
                    id: core.id,
                    node: core.node,
                    nr_threads: core.nr_threads(),
                    weighted_load: weighted,
                    lightest_ready_weight: lightest,
                    tracked_scaled: core.tracked.scaled,
                    injected: 0,
                }
            })
            .collect()
    }

    /// Total number of threads on all runqueues (running plus waiting).
    pub fn total_threads(&self) -> u64 {
        self.cores.iter().map(SimCore::nr_threads).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_workloads::{Phase, ThreadSpec};

    fn threads(n: usize) -> Vec<SimThread> {
        (0..n)
            .map(|i| SimThread::new(SimThreadId(i), ThreadSpec::new(vec![Phase::Compute(1)])))
            .collect()
    }

    #[test]
    fn enqueue_and_migrate() {
        let mut q = CoreQueues::new(2);
        q.enqueue(CoreId(0), SimThreadId(0));
        q.enqueue(CoreId(0), SimThreadId(1));
        assert_eq!(q.core(CoreId(0)).nr_threads(), 2);
        let moved = q.migrate_newest(CoreId(0), CoreId(1)).unwrap();
        assert_eq!(moved, SimThreadId(1));
        assert_eq!(q.loads(), vec![1, 1]);
        assert_eq!(q.total_threads(), 2);
    }

    #[test]
    fn work_conservation_predicate() {
        let mut q = CoreQueues::new(2);
        assert!(q.is_work_conserving());
        q.enqueue(CoreId(1), SimThreadId(0));
        q.enqueue(CoreId(1), SimThreadId(1));
        assert!(!q.is_work_conserving());
        q.core_mut(CoreId(0)).current = Some(SimThreadId(2));
        assert!(q.is_work_conserving());
    }

    #[test]
    fn snapshots_reflect_weights() {
        let mut q = CoreQueues::new(2);
        let table = threads(3);
        q.core_mut(CoreId(0)).current = Some(SimThreadId(0));
        q.enqueue(CoreId(0), SimThreadId(1));
        let snaps = q.snapshots(&table);
        assert_eq!(snaps[0].nr_threads, 2);
        assert_eq!(snaps[0].weighted_load, 2048);
        assert_eq!(snaps[0].lightest_ready_weight, Some(1024));
        assert!(snaps[1].is_idle());
    }

    #[test]
    fn remove_and_pop_ready() {
        let mut q = CoreQueues::new(1);
        q.enqueue(CoreId(0), SimThreadId(0));
        q.enqueue(CoreId(0), SimThreadId(1));
        assert!(q.remove_ready(CoreId(0), SimThreadId(0)));
        assert!(!q.remove_ready(CoreId(0), SimThreadId(0)));
        assert_eq!(q.pop_ready(CoreId(0)), Some(SimThreadId(1)));
        assert_eq!(q.pop_ready(CoreId(0)), None);
    }

    #[test]
    fn mutation_log_records_touched_cores_in_order() {
        let mut q = CoreQueues::new(3);
        q.enqueue(CoreId(2), SimThreadId(0));
        q.enqueue(CoreId(2), SimThreadId(1));
        q.enable_mutation_log();
        assert!(q.migrate_newest(CoreId(2), CoreId(0)).is_some());
        assert!(q.pop_ready(CoreId(0)).is_some());
        assert_eq!(q.drain_mutation_log(), vec![CoreId(0), CoreId(2)]);
        // Draining disables the log again.
        q.enqueue(CoreId(1), SimThreadId(2));
        assert_eq!(q.drain_mutation_log(), Vec::<CoreId>::new());
    }

    #[test]
    fn lazy_catch_up_matches_eager_per_grid_folds() {
        use sched_core::tracker::PeltTracker;
        use sched_core::LoadMetric;

        let tracker = PeltTracker::new(LoadMetric::NrThreads, 8_000_000);
        let period = 4_000_000u64;
        let table = threads(3);
        // One wakeup off-grid, one exactly on a balance tick.
        for wakeup in [30 * period + 1_234_567, 30 * period] {
            let mut eager = CoreQueues::new(1);
            // Seed a non-zero tracked value, then let the queue sit idle.
            eager.core_mut(CoreId(0)).current = Some(SimThreadId(0));
            eager.touch(CoreId(0), 1_000_000, &tracker, &table);
            eager.core_mut(CoreId(0)).current = None;
            eager.touch(CoreId(0), 1_500_000, &tracker, &table);
            let mut lazy = eager.clone();

            // The tick engine folds at every balance tick (including one
            // landing exactly at the wakeup); the lazy replica must
            // reproduce those folds exactly.
            let mut t = period;
            while t <= wakeup {
                eager.touch(CoreId(0), t, &tracker, &table);
                t += period;
            }
            eager.touch(CoreId(0), wakeup, &tracker, &table);

            lazy.catch_up(CoreId(0), wakeup, period, &tracker, &table);
            lazy.touch(CoreId(0), wakeup, &tracker, &table);
            assert_eq!(lazy.core(CoreId(0)).tracked, eager.core(CoreId(0)).tracked);
        }
    }

    #[test]
    fn topology_construction_assigns_nodes() {
        let topo = sched_topology::TopologyBuilder::new().sockets(2).cores_per_socket(2).build();
        let q = CoreQueues::with_topology(&topo);
        assert_eq!(q.nr_cores(), 4);
        assert_ne!(q.core(CoreId(0)).node, q.core(CoreId(3)).node);
    }
}
