//! Simulated threads and their lifecycle.

use sched_core::{CoreId, Nice, Weight};
use sched_workloads::{Phase, ThreadSpec};

/// Identifier of a simulated thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimThreadId(pub usize);

impl std::fmt::Display for SimThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread{}", self.0)
    }
}

/// The lifecycle state of a simulated thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// The thread has not arrived yet.
    NotArrived,
    /// The thread is on some core's runqueue, waiting to run.
    Runnable,
    /// The thread is running on its core.
    Running,
    /// The thread is blocked on a sleep/IO.
    Sleeping,
    /// The thread is blocked waiting for a barrier.
    AtBarrier(u32),
    /// The thread has executed all its phases.
    Finished,
}

/// One simulated thread.
#[derive(Debug, Clone)]
pub struct SimThread {
    /// Identity of the thread.
    pub id: SimThreadId,
    /// The workload description of the thread.
    pub spec: ThreadSpec,
    /// Lifecycle state.
    pub state: ThreadState,
    /// Index of the phase currently being executed (or about to be).
    pub phase_idx: usize,
    /// Remaining CPU time of the current compute phase, in nanoseconds.
    pub remaining_ns: u64,
    /// Core the thread last ran (or is running) on.
    pub last_core: Option<CoreId>,
    /// Time the thread last became runnable (for scheduling latency).
    pub ready_since: Option<u64>,
    /// Time the thread last started running (for preemption accounting).
    pub running_since: Option<u64>,
    /// Invalidation token for in-flight phase-completion events.
    pub run_token: u64,
    /// Number of completed compute phases ("operations").
    pub ops_completed: u64,
    /// Completion time, once finished.
    pub finish_time: Option<u64>,
}

impl SimThread {
    /// Creates a thread from its workload spec.
    pub fn new(id: SimThreadId, spec: ThreadSpec) -> Self {
        SimThread {
            id,
            spec,
            state: ThreadState::NotArrived,
            phase_idx: 0,
            remaining_ns: 0,
            last_core: None,
            ready_since: None,
            running_since: None,
            run_token: 0,
            ops_completed: 0,
            finish_time: None,
        }
    }

    /// Niceness of the thread.
    pub fn nice(&self) -> Nice {
        Nice::new(self.spec.nice)
    }

    /// Load weight of the thread.
    pub fn weight(&self) -> Weight {
        self.nice().weight()
    }

    /// The phase the thread is currently executing, if any remain.
    pub fn current_phase(&self) -> Option<Phase> {
        self.spec.phases.get(self.phase_idx).copied()
    }

    /// Returns `true` if the thread contributes to a core's load (it is
    /// either running or waiting on a runqueue).
    pub fn is_on_a_runqueue(&self) -> bool {
        matches!(self.state, ThreadState::Runnable | ThreadState::Running)
    }

    /// Returns `true` if the thread has completed all its phases.
    pub fn is_finished(&self) -> bool {
        matches!(self.state, ThreadState::Finished)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_starts_before_arrival() {
        let t = SimThread::new(SimThreadId(0), ThreadSpec::new(vec![Phase::Compute(100)]));
        assert_eq!(t.state, ThreadState::NotArrived);
        assert!(!t.is_on_a_runqueue());
        assert!(!t.is_finished());
        assert_eq!(t.current_phase(), Some(Phase::Compute(100)));
        assert_eq!(t.weight(), Weight::NICE_0);
    }

    #[test]
    fn display_and_phase_iteration() {
        let mut t = SimThread::new(
            SimThreadId(3),
            ThreadSpec::new(vec![Phase::Compute(100), Phase::Sleep(50)]),
        );
        assert_eq!(t.id.to_string(), "thread3");
        t.phase_idx = 1;
        assert_eq!(t.current_phase(), Some(Phase::Sleep(50)));
        t.phase_idx = 2;
        assert_eq!(t.current_phase(), None);
    }
}
