//! The `stats == fold(trace)` parity contract on the simulator substrate:
//! both engines, driving the same schedulers as the runqueue parity tests,
//! must produce traces that fold back into exactly the `RoundStats` the run
//! reported — and a traced run must be invisible to the schedule itself
//! (the tick-vs-event parity results are unchanged by an attached sink).

use std::sync::Arc;

use sched_core::Policy;
use sched_sim::{Engine, EventEngine, HierarchicalScheduler, OptimisticScheduler, SimConfig};
use sched_trace::{FoldedStats, SanityChecker, TraceEvent, TraceSink};
use sched_workloads::{ScientificWorkload, Workload};

fn scientific(nr_threads: usize) -> Workload {
    ScientificWorkload {
        nr_threads,
        iterations: 3,
        phase_ns: 2_000_000,
        jitter: 0.0,
        seed: 1,
        fork_on_core: Some(0),
    }
    .generate()
}

/// Asserts the folded trace reproduces the round counters.  Simulator
/// failures are all stale optimistic selections, so they surface in the
/// fold as recheck failures.
fn assert_parity(result: &sched_sim::SimResult, fold: &FoldedStats) {
    assert_eq!(fold.successes, result.balance.successes, "successes");
    assert_eq!(fold.failures(), result.balance.failures, "failures");
    assert_eq!(fold.migrations, result.balance.migrations, "migrations");
    assert_eq!(fold.level_migrations, result.balance.level_migrations, "level attribution");
}

#[test]
fn tick_engine_stats_equal_the_folded_trace() {
    let workload = scientific(8);
    let sink = TraceSink::recording(8);
    let mut engine = Engine::new(
        SimConfig::with_cores(8),
        None,
        &workload,
        Box::new(OptimisticScheduler::new(Policy::simple())),
    );
    engine.set_trace_sink(sink.clone());
    let result = engine.run();
    assert!(result.finished);
    assert!(result.balance.successes > 0, "the trace has real content to fold");
    let trace = sink.drain();
    assert_eq!(trace.dropped, 0, "this run fits the default rings");
    assert_parity(&result, &FoldedStats::from_trace(&trace));
}

#[test]
fn event_engine_stats_equal_the_folded_trace() {
    let workload = scientific(8);
    let sink = TraceSink::recording(8);
    let mut engine = EventEngine::new(
        SimConfig::with_cores(8),
        None,
        &workload,
        Box::new(OptimisticScheduler::new(Policy::simple())),
    );
    engine.set_trace_sink(sink.clone());
    let result = engine.run();
    assert!(result.finished);
    let trace = sink.drain();
    assert_eq!(trace.dropped, 0);
    assert_parity(&result, &FoldedStats::from_trace(&trace));
}

#[test]
fn hierarchical_trace_keeps_level_attribution_on_both_engines() {
    let topo = sched_topology::TopologyBuilder::new().sockets(2).cores_per_socket(2).smt(2).build();
    let arc = Arc::new(topo.clone());
    let workload = scientific(topo.nr_cpus());
    for event_driven in [false, true] {
        let sink = TraceSink::recording(topo.nr_cpus());
        let sched = Box::new(HierarchicalScheduler::new(Policy::simple(), Arc::clone(&arc)));
        let result = if event_driven {
            let mut engine = EventEngine::new(SimConfig::default(), Some(&topo), &workload, sched);
            engine.set_trace_sink(sink.clone());
            engine.run()
        } else {
            let mut engine = Engine::new(SimConfig::default(), Some(&topo), &workload, sched);
            engine.set_trace_sink(sink.clone());
            engine.run()
        };
        assert!(result.finished);
        let fold = FoldedStats::from_trace(&sink.drain());
        assert_parity(&result, &fold);
        assert!(
            fold.level_migrations.iter().sum::<u64>() >= 1,
            "level attribution must survive the trace round-trip (event_driven={event_driven})"
        );
    }
}

#[test]
fn an_attached_sink_never_changes_the_schedule() {
    // Recording is write-only: a traced run and an untraced run of the same
    // workload must report identical results, on both engines.
    let workload = scientific(8);
    let untraced = Engine::new(
        SimConfig::with_cores(8),
        None,
        &workload,
        Box::new(OptimisticScheduler::new(Policy::simple())),
    )
    .run();
    let sink = TraceSink::recording(8);
    let mut engine = Engine::new(
        SimConfig::with_cores(8),
        None,
        &workload,
        Box::new(OptimisticScheduler::new(Policy::simple())),
    );
    engine.set_trace_sink(sink.clone());
    let traced = engine.run();
    assert_eq!(traced.makespan_ns, untraced.makespan_ns, "makespan");
    assert_eq!(traced.operations, untraced.operations, "operations");
    assert_eq!(traced.balance, untraced.balance, "balance counters");
}

#[test]
fn a_traced_sim_run_narrates_lifecycle_and_passes_the_checker() {
    let workload = scientific(8);
    let sink = TraceSink::recording(8);
    let mut engine = Engine::new(
        SimConfig::with_cores(8),
        None,
        &workload,
        Box::new(OptimisticScheduler::new(Policy::simple())),
    );
    engine.set_trace_sink(sink.clone());
    let result = engine.run();
    assert!(result.finished);
    let trace = sink.drain();
    let done =
        trace.events.iter().filter(|e| matches!(e.event, TraceEvent::TaskDone { .. })).count();
    assert_eq!(done, 8, "every thread's completion is narrated exactly once");
    assert!(
        trace.events.iter().any(|e| matches!(e.event, TraceEvent::BalanceRound { .. })),
        "balance rounds are narrated"
    );
    assert!(
        trace.events.iter().any(|e| matches!(e.event, TraceEvent::Unpark)),
        "cores narrate leaving idle"
    );
    // A finished run leaves every queue empty; derived occupancy must agree.
    let final_loads = vec![0u64; 8];
    let violations = SanityChecker::check_trace(&trace, false, Some(&final_loads));
    assert!(violations.is_empty(), "clean run flagged: {violations:?}");
}
