//! Offline stand-in for the crates.io `rand` crate.
//!
//! This workspace builds with no network access, so the handful of `rand`
//! APIs the tree actually uses — [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`]
//! and [`Rng::gen_range`] over integer ranges — are implemented here
//! directly.  The generator is xoshiro256++ seeded through SplitMix64, the
//! same construction real `SmallRng` uses on 64-bit targets, so runs are
//! deterministic, well distributed and cheap.  It is **not** a
//! cryptographic generator and does not try to be sequence-compatible with
//! the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Random number generator core: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next value of the underlying 64-bit stream.
    fn next_u64(&mut self) -> u64;
}

/// Constructing generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Samples a uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore> Rng for R {}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from the half-open range `[low, high)`.
    fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self;
    /// Samples uniformly from the closed range `[low, high]`.
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self;
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample from an empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// Uniform `u64` in `[0, span)` by widening multiply (Lemire's method,
/// without the rejection refinement — bias is < 2^-32 for the span sizes
/// used here and determinism is what matters).
fn below<G: RngCore + ?Sized>(rng: &mut G, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_unsigned_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
                low + below(rng, (high - low) as u64) as $t
            }
            fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
                let span = (high - low) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low + below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_unsigned_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_uniform {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                low.wrapping_add(below(rng, span) as $t)
            }
            fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_signed_uniform!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
        low + (high - low) * ((rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64))
    }
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
        // For floats the closed/open distinction is immaterial at this grain.
        Self::sample_half_open(rng, low, high)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as real SmallRng does.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn inclusive_ranges_reach_both_ends() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut saw_low = false;
        let mut saw_high = false;
        for _ in 0..10_000 {
            match rng.gen_range(0u32..=3) {
                0 => saw_low = true,
                3 => saw_high = true,
                _ => {}
            }
        }
        assert!(saw_low && saw_high);
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same =
            (0..64).filter(|_| a.gen_range(0u64..1 << 32) == b.gen_range(0u64..1 << 32)).count();
        assert!(same < 4);
    }
}
