//! Offline stand-in for the crates.io `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` behind `parking_lot`'s non-poisoning API
//! (`lock()` returns the guard directly).  The std mutex is futex-based on
//! Linux, so the performance character is close enough for this
//! workspace's contention experiments; only the API subset the tree uses
//! is provided.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`] and [`Mutex::try_lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    ///
    /// Unlike `std`, a panic in a previous critical section does not poison
    /// the lock — matching `parking_lot` semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner) }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard { inner: p.into_inner() }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(());
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock must remain usable after a panic");
    }
}
