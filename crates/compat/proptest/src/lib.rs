//! Offline stand-in for the crates.io `proptest` crate.
//!
//! A miniature deterministic property-testing harness exposing exactly the
//! API surface this workspace's tests use: the [`proptest!`] macro, the
//! [`strategy::Strategy`] trait with `prop_map`, range and tuple
//! strategies, [`strategy::Just`], [`prop_oneof!`], [`arbitrary::any`],
//! [`collection::vec`], and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` macros.
//!
//! Unlike the real crate there is no shrinking and no persistence: every
//! test runs a fixed number of cases from a fixed seed, so failures are
//! reproducible by construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner plumbing: the deterministic RNG and the case-level error.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Number of cases each `proptest!` test runs.
    pub const DEFAULT_CASES: u32 = 64;

    /// Deterministic RNG driving every strategy.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        /// The fixed-seed RNG used by `proptest!` tests.
        pub fn deterministic() -> Self {
            TestRng { inner: SmallRng::seed_from_u64(0x_5EED_CAFE_F00D_D00D) }
        }

        /// Creates an RNG from an explicit seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { inner: SmallRng::seed_from_u64(seed) }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform value in `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics if `bound` is zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` and should be retried.
        Reject,
        /// The case failed an assertion.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds the failure variant.
        pub fn fail(message: String) -> Self {
            TestCaseError::Fail(message)
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between several strategies of one value type
    /// (the expansion of [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be non-empty.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (low, high) = (*self.start(), *self.end());
                    assert!(low <= high, "empty range strategy");
                    let span = (high as i128 - low as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (low as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident / $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A / 0, B / 1);
        (A / 0, B / 1, C / 2);
        (A / 0, B / 1, C / 2, D / 3);
    }
}

/// Strategies for standard collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    /// The strategy returned by [`fn@vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The [`any`](arbitrary::any) entry point and the [`Arbitrary`](arbitrary::Arbitrary) trait.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(core::marker::PhantomData)
    }

    /// The strategy returned by [`any`].
    pub struct Any<A>(core::marker::PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` namespace (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::test_runner::TestRng::deterministic();
            let mut accepted = 0u32;
            let mut rejected = 0u32;
            while accepted < $crate::test_runner::DEFAULT_CASES {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < 4096,
                            "prop_assume! rejected too many cases in {}",
                            stringify!($name),
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("property {} failed: {}", stringify!($name), msg);
                    }
                }
            }
        }
    )*};
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

/// `assert!` that fails the current generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that fails the current generated case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            left,
            right,
        );
    }};
}

/// `assert_ne!` that fails the current generated case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            left,
        );
    }};
}

/// Discards the current generated case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic() {
        let strat = prop::collection::vec(0usize..6, 2..24);
        let mut a = TestRng::deterministic();
        let mut b = TestRng::deterministic();
        for _ in 0..32 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let strat = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = TestRng::deterministic();
        let seen: std::collections::BTreeSet<u32> =
            (0..256).map(|_| strat.generate(&mut rng)).collect();
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    proptest! {
        #[test]
        fn the_macro_machinery_works(xs in prop::collection::vec(0usize..10, 1..8), k in any::<u64>()) {
            prop_assume!(!xs.is_empty());
            let total: usize = xs.iter().sum();
            prop_assert!(total <= 9 * xs.len(), "sum {} too large", total);
            prop_assert_eq!(k.wrapping_add(0), k);
        }

        #[test]
        fn mapped_and_tuple_strategies_compose(
            s in (1i64..6, prop_oneof![Just(">="), Just("==")]).prop_map(|(t, op)| format!("x {op} {t}")),
        ) {
            prop_assert!(s.starts_with("x "));
        }
    }
}
