//! Offline stand-in for the crates.io `criterion` crate.
//!
//! Implements the subset of the Criterion API this workspace's benches use
//! — groups, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!` — over a simple adaptive
//! wall-clock measurement loop.  There is no statistical analysis, HTML
//! report or comparison to previous runs: each benchmark prints one
//! `ns/iter` line, which is enough to eyeball the optimistic/pessimistic
//! ratios the E-series benches exist to show.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level handle passed to every bench function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _parent: self, name: name.into(), sample_size }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.sample_size, f);
        self
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample budget for this group (scales measuring time).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `self.name/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_size, |b| f(b));
        self
    }

    /// Benchmarks `f` with an input value under `self.name/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { text: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(text: &str) -> Self {
        BenchmarkId { text: text.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> Self {
        BenchmarkId { text }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    measure_for: Duration,
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f` over an adaptively chosen number of iterations, doubling
    /// until the measurement window (200 µs per configured sample, so 20 ms
    /// at the default `sample_size` of 100) is filled.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.measure_for || iters >= 1 << 22 {
                self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
                self.iters = iters;
                return;
            }
            iters *= 2;
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        measure_for: Duration::from_micros(200 * sample_size as u64),
        ns_per_iter: 0.0,
        iters: 0,
    };
    f(&mut bencher);
    println!("{label:<60} {:>12.1} ns/iter  ({} iters)", bencher.ns_per_iter, bencher.iters);
}

/// Collects bench functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `fn main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("optimistic", 16).to_string(), "optimistic/16");
        assert_eq!(BenchmarkId::from_parameter("first").to_string(), "first");
    }

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        group.bench_function("sum", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
        });
        group.finish();
    }
}
