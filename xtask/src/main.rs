//! Repo automation tasks (the `cargo xtask` pattern, no external deps).
//!
//! Three tasks: the **bench-regression gate**, the **scenario fuzzer**,
//! and the **trace reporter**.
//!
//! ```text
//! cargo run -p xtask -- bench-diff \
//!     --baseline BENCH_results.json --current /tmp/BENCH_results.json \
//!     [--tolerance 0.15]
//! cargo run -p xtask -- fuzz-scenarios --seed 7 --count 50 --orders 3
//! cargo run -p xtask -- fuzz-scenarios --repro experiments/repro/fuzz-seed7-3.scn
//! cargo run -p xtask -- trace-report --experiment e16 --backend sim
//! ```
//!
//! `fuzz-scenarios` generates a deterministic stream of declarative
//! scenario documents from the seed, runs each through the experiment
//! runner, and checks the records against the invariants the document
//! declares (work conservation, conservation of tasks, non-inversion).
//! `--orders N` additionally sweeps N seeded same-time orderings of each
//! sim-compatible scenario on the event-driven simulator: reordering
//! simultaneous events must not change whether the run finishes or how
//! many operations complete.  Failing scenarios — including failing
//! orderings, whose documents pin the offending `order` seed — are written
//! to `experiments/repro/*.scn` so a failure is a file you can re-run with
//! `--repro` (or check in as a regression scenario), not a log line you
//! have to reconstruct.
//!
//! `trace-report` runs one catalog experiment with decision tracing on
//! and folds the drained trace into per-level steal-latency histograms,
//! an idle-interval attribution table, and the tasks-per-acquisition
//! timeline — the offline counterpart of the online sanity checker, for
//! when the question is "how did it behave" rather than "was it wrong".
//!
//! `bench-diff` compares two `experiments --json` documents per
//! `(experiment, scenario, backend)` key — [`sched_json::record_key`], the
//! same identity the writer's parity tests use, and duplicate keys in
//! either document are an error — and exits non-zero when the
//! current run regressed beyond tolerance:
//!
//! * `throughput` — relative: fails when
//!   `current < baseline × (1 − tolerance)`.  Records whose unit is
//!   wall-clock-dependent (`migrations/s`) get **double** the tolerance and
//!   are only compared when both runs measured at least
//!   [`WALL_CLOCK_FLOOR_MS`] of wall time — sub-millisecond wall-clock
//!   throughput is measurement noise, not signal, and would make the gate
//!   flake; skipped comparisons are printed as notes.  The simulator's
//!   `ops/s` are measured in simulated time, are deterministic, and are
//!   always gated.
//! * `violating_idle` — absolute: fails when
//!   `current > baseline + tolerance` (it is a fraction in `[0, 1]`, so a
//!   relative bound would explode around zero).
//! * `migrations`, model backend only — relative, both directions: the
//!   model executor is deterministic, so even though its wall-clock
//!   throughput sits under the measurement floor, its migration count is
//!   an exact behavioural fingerprint and any drift flags a real change.
//! * `p99_sched_latency_us` — **absolute ceiling** (`--p99-ceiling-us F`,
//!   schema v4): any current record carrying a p99 scheduling latency
//!   above the ceiling fails, regardless of what the baseline said.  A
//!   policy can converge cheaply by parking work (an over-long PELT
//!   half-life does exactly that); throughput and idle gates would wave
//!   it through, the latency SLO does not.
//! * `e2e_p99_us` / `e2e_p999_us` (schema v8, the real executor) — the
//!   same **absolute ceiling** (`--p99-ceiling-us F`) applies to the
//!   measured end-to-end request latency of the `exec` backend's E26
//!   open-loop ladder: any current record whose e2e p99 *or* p999 busts
//!   the ceiling fails, and a record whose baseline measured them but the
//!   current run reports `null` fails as a broken recorder.
//! * `tasks_per_acquisition` (schema v5, the E23 batch sweep) — relative
//!   floor at **double** tolerance when both runs measured it: the batched
//!   rows' amortisation breathes with steal races, but a collapse back
//!   towards one task per acquisition means batching silently stopped
//!   working and fails the gate.
//! * `events_processed` (schema v6, the simulator backends) — relative
//!   **ceiling** when both runs measured it: the simulators are
//!   deterministic, so an event count climbing beyond tolerance means the
//!   engine started doing asymptotically more work per scenario (the
//!   regression the event-driven engine exists to prevent).  Processing
//!   fewer events is an improvement and never fails.
//! * a key present in the baseline but missing from the current run fails;
//!   keys only in the current run are reported as re-baseline hints.
//!
//! Improvements never fail the gate; refresh the committed baseline with
//! `cargo run --release -p sched-bench --bin experiments -- --json` when
//! they accumulate.

use std::process::ExitCode;

use sched_json as json;

use json::Json;

/// Minimum wall time (ms) for a wall-clock throughput to count as a
/// measurement rather than timer noise.
const WALL_CLOCK_FLOOR_MS: f64 = 50.0;

/// One record's metrics, keyed by (experiment, scenario, backend).
#[derive(Debug, Clone)]
struct Record {
    key: String,
    backend: String,
    throughput: f64,
    throughput_unit: String,
    violating_idle: f64,
    migrations: f64,
    wall_ms: f64,
    p99_sched_latency_us: Option<f64>,
    e2e_p99_us: Option<f64>,
    e2e_p999_us: Option<f64>,
    steal_batch_k: Option<String>,
    tasks_per_acquisition: Option<f64>,
    sim_engine: Option<String>,
    events_processed: Option<f64>,
}

fn records_of(doc: &Json, path: &str) -> Result<Vec<Record>, String> {
    let records = doc
        .get("records")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{path}: no `records` array"))?;
    let mut out = Vec::with_capacity(records.len());
    for (i, r) in records.iter().enumerate() {
        let field = |name: &str| {
            r.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{path}: record {i} lacks string `{name}`"))
        };
        let number = |name: &str| {
            r.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{path}: record {i} lacks number `{name}`"))
        };
        out.push(Record {
            key: json::record_key(&field("experiment")?, &field("scenario")?, &field("backend")?),
            backend: field("backend")?,
            throughput: number("throughput")?,
            throughput_unit: field("throughput_unit")?,
            violating_idle: number("violating_idle")?,
            migrations: number("migrations").unwrap_or(f64::NAN),
            wall_ms: number("wall_ms").unwrap_or(f64::INFINITY),
            p99_sched_latency_us: r.get("p99_sched_latency_us").and_then(Json::as_f64),
            e2e_p99_us: r.get("e2e_p99_us").and_then(Json::as_f64),
            e2e_p999_us: r.get("e2e_p999_us").and_then(Json::as_f64),
            steal_batch_k: r.get("steal_batch_k").and_then(Json::as_str).map(str::to_string),
            tasks_per_acquisition: r.get("tasks_per_acquisition").and_then(Json::as_f64),
            sim_engine: r.get("sim_engine").and_then(Json::as_str).map(str::to_string),
            events_processed: r.get("events_processed").and_then(Json::as_f64),
        });
    }
    // A duplicate key would make the gate compare against whichever record
    // `find` happens to hit first — reject the document instead.
    let mut seen = std::collections::BTreeSet::new();
    for record in &out {
        if !seen.insert(record.key.as_str()) {
            return Err(format!("{path}: duplicate record key `{}`", record.key));
        }
    }
    Ok(out)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn bench_diff(args: &[String]) -> Result<ExitCode, String> {
    let baseline_path =
        flag_value(args, "--baseline").unwrap_or_else(|| "BENCH_results.json".into());
    let current_path = flag_value(args, "--current").ok_or("missing --current PATH")?;
    let tolerance: f64 = match flag_value(args, "--tolerance") {
        Some(t) => t.parse().map_err(|e| format!("bad --tolerance: {e}"))?,
        None => 0.15,
    };
    if !(0.0..1.0).contains(&tolerance) {
        return Err(format!("--tolerance must be in [0, 1), got {tolerance}"));
    }
    let p99_ceiling_us: Option<f64> = match flag_value(args, "--p99-ceiling-us") {
        Some(v) => {
            let ceiling = v.parse().map_err(|e| format!("bad --p99-ceiling-us: {e}"))?;
            if ceiling <= 0.0 {
                return Err(format!("--p99-ceiling-us must be positive, got {ceiling}"));
            }
            Some(ceiling)
        }
        None => None,
    };

    let read = |path: &str| -> Result<Vec<Record>, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        records_of(&doc, path)
    };
    let baseline = read(&baseline_path)?;
    let current = read(&current_path)?;

    let mut regressions = Vec::new();
    let mut notes = Vec::new();
    let mut compared = 0usize;

    for base in &baseline {
        let Some(cur) = current.iter().find(|c| c.key == base.key) else {
            regressions.push(format!("MISSING   {}", base.key));
            continue;
        };
        compared += 1;
        // Wall-clock throughputs breathe with machine load; simulated-time
        // throughputs are deterministic.
        let wall_clock = base.throughput_unit == "migrations/s";
        let tput_tol = if wall_clock { tolerance * 2.0 } else { tolerance };
        if wall_clock && (base.wall_ms < WALL_CLOCK_FLOOR_MS || cur.wall_ms < WALL_CLOCK_FLOOR_MS) {
            notes.push(format!(
                "SKIP tput {} (wall {:.2}ms/{:.2}ms below the {WALL_CLOCK_FLOOR_MS:.0}ms \
                 measurement floor)",
                base.key, base.wall_ms, cur.wall_ms
            ));
        } else if cur.throughput < base.throughput * (1.0 - tput_tol) {
            let floor = base.throughput * (1.0 - tput_tol);
            regressions.push(format!(
                "THROUGHPUT {}: {:.0} < {:.0} (baseline {:.0} {}, -{:.0}% tolerated)",
                base.key,
                cur.throughput,
                floor,
                base.throughput,
                base.throughput_unit,
                tput_tol * 100.0
            ));
        }
        let ceil = base.violating_idle + tolerance;
        if cur.violating_idle > ceil {
            regressions.push(format!(
                "IDLE      {}: violating idle {:.3} > {:.3} (baseline {:.3} + {:.2} abs)",
                base.key, cur.violating_idle, ceil, base.violating_idle, tolerance
            ));
        }
        // The model backend's executor is deterministic, so its wall-clock
        // throughput being skipped above does not leave it ungated: its
        // migration count is an exact behavioural fingerprint, and any
        // drift beyond tolerance (in either direction — more migrations
        // means ping-pong, fewer means lost balancing work) flags a real
        // change that needs a deliberate re-baseline.
        // The E23 batch sweep's amortisation metric: race-dependent like
        // wall-clock numbers (hence double tolerance), but a current run
        // that claims far fewer tasks per acquisition than the baseline
        // means batching degenerated back to one-at-a-time stealing.
        if let (Some(base_tpa), Some(cur_tpa)) =
            (base.tasks_per_acquisition, cur.tasks_per_acquisition)
        {
            let floor = base_tpa * (1.0 - tolerance * 2.0);
            if cur_tpa < floor {
                regressions.push(format!(
                    "BATCH     {}: {:.2} tasks/acquisition < {:.2} (baseline {:.2}, k={}, \
                     -{:.0}% tolerated)",
                    base.key,
                    cur_tpa,
                    floor,
                    base_tpa,
                    cur.steal_batch_k.as_deref().unwrap_or("?"),
                    tolerance * 200.0
                ));
            }
        }
        // The simulators are deterministic, so their event counts are an
        // exact cost fingerprint (schema v6): climbing beyond tolerance
        // means a scenario got asymptotically more expensive to simulate.
        // Fewer events is the improvement the event engine exists for and
        // never fails the gate.
        if let (Some(base_events), Some(cur_events)) = (base.events_processed, cur.events_processed)
        {
            let ceil = base_events * (1.0 + tolerance);
            if cur_events > ceil {
                regressions.push(format!(
                    "EVENTS    {}: {:.0} events > {:.0} (baseline {:.0}, engine {}, +{:.0}% \
                     tolerated)",
                    base.key,
                    cur_events,
                    ceil,
                    base_events,
                    cur.sim_engine.as_deref().unwrap_or("?"),
                    tolerance * 100.0
                ));
            }
        }
        if base.backend == "model"
            && base.migrations.is_finite()
            && cur.migrations.is_finite()
            && (cur.migrations - base.migrations).abs() > base.migrations * tolerance
        {
            regressions.push(format!(
                "MIGRATIONS {}: {:.0} vs baseline {:.0} (deterministic backend, ±{:.0}% tolerated)",
                base.key,
                cur.migrations,
                base.migrations,
                tolerance * 100.0
            ));
        }
    }
    // The latency SLO is absolute and applies to every *current* record
    // that measures a p99 at all — including brand-new ones the relative
    // gates cannot see yet.  A record that *used to* measure a p99 but no
    // longer does also fails: a silently broken latency recorder would
    // otherwise disable the one gate that catches work-parking policies.
    if let Some(ceiling) = p99_ceiling_us {
        for cur in &current {
            if let Some(p99) = cur.p99_sched_latency_us {
                if p99 > ceiling {
                    regressions.push(format!(
                        "P99       {}: {p99:.0}us > {ceiling:.0}us absolute scheduling-latency \
                         ceiling",
                        cur.key
                    ));
                }
            } else if baseline.iter().any(|b| b.key == cur.key && b.p99_sched_latency_us.is_some())
            {
                regressions.push(format!(
                    "P99       {}: the baseline measured a p99 but the current run does not \
                     (latency recorder broken?)",
                    cur.key
                ));
            }
            // The same ceiling gates the executor's measured end-to-end
            // request latency (schema v8): both quantiles, absolutely.
            let base = baseline.iter().find(|b| b.key == cur.key);
            let e2e_quantiles = [
                ("E2E P99", cur.e2e_p99_us, base.is_some_and(|b| b.e2e_p99_us.is_some())),
                ("E2E P999", cur.e2e_p999_us, base.is_some_and(|b| b.e2e_p999_us.is_some())),
            ];
            for (label, quantile, measured_in_baseline) in e2e_quantiles {
                if let Some(us) = quantile {
                    if us > ceiling {
                        regressions.push(format!(
                            "{label:<9} {}: {us:.0}us > {ceiling:.0}us absolute end-to-end \
                             latency ceiling",
                            cur.key
                        ));
                    }
                } else if measured_in_baseline {
                    regressions.push(format!(
                        "{label:<9} {}: the baseline measured an end-to-end quantile but the \
                         current run does not (latency recorder broken?)",
                        cur.key
                    ));
                }
            }
        }
    }
    for cur in &current {
        if !baseline.iter().any(|b| b.key == cur.key) {
            notes.push(format!("NEW       {} (re-baseline to start gating it)", cur.key));
        }
    }

    println!(
        "bench-diff: {} baseline records, {} current, {} compared, tolerance ±{:.0}%",
        baseline.len(),
        current.len(),
        compared,
        tolerance * 100.0
    );
    for note in &notes {
        println!("  note: {note}");
    }
    if regressions.is_empty() {
        println!("bench-diff: OK — no regression beyond tolerance");
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("bench-diff: {} regression(s):", regressions.len());
        for r in &regressions {
            eprintln!("  {r}");
        }
        Ok(ExitCode::FAILURE)
    }
}

/// `fuzz-scenarios --seed N --count M [--orders K] [--repro-dir DIR]` or
/// `fuzz-scenarios --repro FILE...`: the seeded scenario fuzzer.
///
/// The seeded form generates, runs and checks `M` scenarios, sweeping `K`
/// seeded same-time orderings of each on the event-driven simulator; every
/// failing one is written to `DIR` (default `experiments/repro/`) as a
/// `.scn` document (a failing ordering's document pins its `order` seed).
/// The `--repro` form loads the given document(s) and replays them through
/// the same runner, invariant checker and — when the document carries an
/// `order` seed — the ordering comparison.
fn fuzz_scenarios_task(args: &[String]) -> Result<ExitCode, String> {
    let repro_files: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| *a == "--repro" || (*i > 0 && args[i - 1] == "--repro"))
        .filter(|(_, a)| *a != "--repro")
        .map(|(_, a)| a.clone())
        .collect();
    if args.iter().any(|a| a == "--repro") && repro_files.is_empty() {
        return Err("--repro requires a .scn file argument".into());
    }

    if !repro_files.is_empty() {
        let mut violations = Vec::new();
        let mut records = 0usize;
        for path in &repro_files {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let scenarios =
                sched_bench::load_str(&text, path).map_err(|e| format!("{path}: {e}"))?;
            for scenario in &scenarios {
                println!("replaying `{}` from {path}...", scenario.doc.name);
                let (n, mut v) = sched_bench::fuzz::check_scenario(scenario);
                records += n;
                violations.append(&mut v);
            }
        }
        return if violations.is_empty() {
            println!("fuzz-scenarios: OK — {records} records, all declared invariants hold");
            Ok(ExitCode::SUCCESS)
        } else {
            eprintln!("fuzz-scenarios: {} violation(s):", violations.len());
            for v in &violations {
                eprintln!("  {v}");
            }
            Ok(ExitCode::FAILURE)
        };
    }

    let seed: u64 = match flag_value(args, "--seed") {
        Some(s) => s.parse().map_err(|e| format!("bad --seed: {e}"))?,
        None => 7,
    };
    let count: usize = match flag_value(args, "--count") {
        Some(c) => c.parse().map_err(|e| format!("bad --count: {e}"))?,
        None => 50,
    };
    let orders: usize = match flag_value(args, "--orders") {
        Some(o) => o.parse().map_err(|e| format!("bad --orders: {e}"))?,
        None => 0,
    };
    let repro_dir =
        flag_value(args, "--repro-dir").unwrap_or_else(|| "experiments/repro".to_string());

    println!("fuzz-scenarios: seed {seed}, {count} scenarios, {orders} orderings each...");
    let report = sched_bench::fuzz_scenarios(&sched_bench::FuzzConfig { seed, count, orders });
    println!(
        "fuzz-scenarios: {} scenarios generated, {} records checked, {} orderings swept",
        report.generated, report.records_checked, report.orders_checked
    );
    if report.is_clean() {
        println!("fuzz-scenarios: OK — all declared invariants hold");
        return Ok(ExitCode::SUCCESS);
    }

    std::fs::create_dir_all(&repro_dir).map_err(|e| format!("cannot create {repro_dir}: {e}"))?;
    // Every further traced run (the diagnostic re-runs below) exports its
    // Perfetto trace next to the repro documents, so the CI artifact is
    // self-contained: the document to replay, the violations with their
    // sanity excerpts, and the decision timeline to open in the viewer.
    sched_bench::set_trace_dir(std::path::Path::new(&repro_dir));
    eprintln!("fuzz-scenarios: {} failing scenario(s):", report.failures.len());
    for (i, failure) in report.failures.iter().enumerate() {
        for v in &failure.violations {
            eprintln!("  {v}");
        }
        let path = format!("{repro_dir}/fuzz-seed{seed}-{i}.scn");
        let doc = format!(
            "# Failing scenario emitted by `xtask fuzz-scenarios --seed {seed}`.\n\
             # Replay with: cargo run -p xtask -- fuzz-scenarios --repro {path}\n\n{}",
            sched_dsl::print_scenario(&failure.doc)
        );
        std::fs::write(&path, doc).map_err(|e| format!("cannot write {path}: {e}"))?;
        let violations_path = format!("{repro_dir}/fuzz-seed{seed}-{i}.violations.txt");
        let rendered: String = failure.violations.iter().map(|v| format!("{v}\n\n")).collect();
        std::fs::write(&violations_path, rendered)
            .map_err(|e| format!("cannot write {violations_path}: {e}"))?;
        // The diagnostic re-run: same document, but now with the trace
        // exporter armed, so each backend's `*.trace.json` lands in the
        // repro directory.
        if let Ok(spec) = sched_bench::from_doc(&failure.doc) {
            let _ = sched_bench::fuzz::check_scenario(&sched_bench::LoadedScenario {
                doc: failure.doc.clone(),
                spec,
            });
        }
        eprintln!("  wrote {path} (+ violations and *.trace.json exports)");
    }
    Ok(ExitCode::FAILURE)
}

/// `trace-report [--experiment eN] [--backend NAME]`: runs the chosen
/// catalog experiment on one backend with decision tracing on, then folds
/// the drained trace into the three offline reports
/// ([`sched_bench::trace_report`]): per-level steal-latency histograms,
/// the idle-interval attribution table, and tasks-per-acquisition over
/// time.  Defaults to E16 (hierarchical convergence on the eight-node
/// topology) on the tick simulator — the one catalog entry that exercises
/// every report column: leveled steals, real park/unpark spans, and a
/// draining backlog.
fn trace_report_task(args: &[String]) -> Result<ExitCode, String> {
    let id = match flag_value(args, "--experiment") {
        Some(e) => sched_bench::ExperimentId::parse(&e)
            .ok_or_else(|| format!("unknown experiment `{e}`"))?,
        None => sched_bench::ExperimentId::E16,
    };
    let backend = flag_value(args, "--backend").unwrap_or_else(|| "sim".to_string());
    let mut reported = 0usize;
    for spec in sched_bench::catalog::specs_of(id) {
        let Some((record, trace)) = sched_bench::run_traced_backend(&backend, &spec)? else {
            continue;
        };
        println!(
            "trace-report: `{}` on {backend}: {} events across {} cores ({} dropped)\n",
            record.scenario,
            trace.events.len(),
            trace.nr_cores,
            trace.dropped,
        );
        for table in sched_bench::trace_report(&trace) {
            println!("{}", table.to_text());
        }
        reported += 1;
    }
    if reported == 0 {
        return Err(format!(
            "backend `{backend}` cannot execute any `{}` scenario \
             (backends: {})",
            id.title(),
            sched_bench::TRACEABLE_BACKENDS.join(", ")
        ));
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run = |result: Result<ExitCode, String>| match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    };
    match args.first().map(String::as_str) {
        Some("bench-diff") => run(bench_diff(&args[1..])),
        Some("fuzz-scenarios") => run(fuzz_scenarios_task(&args[1..])),
        Some("trace-report") => run(trace_report_task(&args[1..])),
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- bench-diff --current PATH [--baseline PATH] \
                 [--tolerance F] [--p99-ceiling-us F]\n       \
                 cargo run -p xtask -- fuzz-scenarios [--seed N] [--count M] [--orders K] \
                 [--repro-dir DIR] | --repro FILE...\n       \
                 cargo run -p xtask -- trace-report [--experiment eN] [--backend NAME]"
            );
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(records: &str) -> String {
        format!("{{\"schema_version\": 2, \"records\": [{records}]}}")
    }

    fn record(experiment: &str, backend: &str, throughput: f64, idle: f64, unit: &str) -> String {
        format!(
            "{{\"experiment\": \"{experiment}\", \"scenario\": \"s\", \"backend\": \"{backend}\", \
             \"throughput\": {throughput}, \"throughput_unit\": \"{unit}\", \
             \"violating_idle\": {idle}}}"
        )
    }

    fn parse_records(text: &str) -> Vec<Record> {
        records_of(&json::parse(text).unwrap(), "test").unwrap()
    }

    #[test]
    fn records_parse_from_the_harness_shape() {
        let records = parse_records(&doc(&record("e1", "sim", 2400.0, 0.25, "ops/s")));
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].key, "e1 | s | sim");
        assert_eq!(records[0].throughput, 2400.0);
        assert_eq!(records[0].violating_idle, 0.25);
    }

    #[test]
    fn duplicate_record_keys_are_rejected() {
        let twin = record("e1", "sim", 2400.0, 0.25, "ops/s");
        let text = doc(&format!("{twin}, {twin}"));
        let err = records_of(&json::parse(&text).unwrap(), "test").unwrap_err();
        assert!(err.contains("duplicate record key"), "{err}");
        assert!(err.contains("e1 | s | sim"), "{err}");
    }

    #[test]
    fn regression_detection_via_files() {
        let dir = std::env::temp_dir().join("xtask-bench-diff-test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let good = dir.join("good.json");
        let bad = dir.join("bad.json");
        std::fs::write(&base, doc(&record("e1", "sim", 1000.0, 0.2, "ops/s"))).unwrap();
        // Within tolerance: -10% throughput.
        std::fs::write(&good, doc(&record("e1", "sim", 900.0, 0.2, "ops/s"))).unwrap();
        // Beyond tolerance: -20% throughput.
        std::fs::write(&bad, doc(&record("e1", "sim", 800.0, 0.2, "ops/s"))).unwrap();
        let run = |current: &std::path::Path| {
            bench_diff(&[
                "--baseline".into(),
                base.to_str().unwrap().into(),
                "--current".into(),
                current.to_str().unwrap().into(),
                "--tolerance".into(),
                "0.15".into(),
            ])
            .unwrap()
        };
        assert_eq!(run(&good), ExitCode::SUCCESS);
        assert_eq!(run(&bad), ExitCode::FAILURE);
    }

    #[test]
    fn model_migration_drift_is_gated_despite_the_wall_clock_floor() {
        let dir = std::env::temp_dir().join("xtask-bench-diff-migrations");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let cur = dir.join("cur.json");
        let model = |migrations: u64| {
            format!(
                "{{\"experiment\": \"e2\", \"scenario\": \"s\", \"backend\": \"model\", \
                 \"throughput\": 100000.0, \"throughput_unit\": \"migrations/s\", \
                 \"violating_idle\": 0.1, \"migrations\": {migrations}, \"wall_ms\": 0.05}}"
            )
        };
        std::fs::write(&base, doc(&model(20))).unwrap();
        // 25% fewer migrations from a deterministic backend: a behaviour
        // change, caught even though the wall-clock throughput is skipped.
        std::fs::write(&cur, doc(&model(15))).unwrap();
        let code = bench_diff(&[
            "--baseline".into(),
            base.to_str().unwrap().into(),
            "--current".into(),
            cur.to_str().unwrap().into(),
        ])
        .unwrap();
        assert_eq!(code, ExitCode::FAILURE);
    }

    #[test]
    fn sub_floor_wall_clock_throughput_is_skipped_not_gated() {
        let dir = std::env::temp_dir().join("xtask-bench-diff-floor");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let cur = dir.join("cur.json");
        let noisy = |tput: f64| {
            format!(
                "{{\"experiment\": \"e5\", \"scenario\": \"s\", \"backend\": \"model\", \
                 \"throughput\": {tput}, \"throughput_unit\": \"migrations/s\", \
                 \"violating_idle\": 0.1, \"wall_ms\": 0.06}}"
            )
        };
        std::fs::write(&base, doc(&noisy(1_500_000.0))).unwrap();
        // A 3x wall-clock "regression" on a 0.06ms measurement is noise.
        std::fs::write(&cur, doc(&noisy(500_000.0))).unwrap();
        let code = bench_diff(&[
            "--baseline".into(),
            base.to_str().unwrap().into(),
            "--current".into(),
            cur.to_str().unwrap().into(),
        ])
        .unwrap();
        assert_eq!(code, ExitCode::SUCCESS);
    }

    #[test]
    fn wall_clock_units_get_double_tolerance() {
        let dir = std::env::temp_dir().join("xtask-bench-diff-wall");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let cur = dir.join("cur.json");
        std::fs::write(&base, doc(&record("e2", "rq", 1000.0, 0.1, "migrations/s"))).unwrap();
        // -20% would fail a ±15% relative gate, but wall-clock units
        // tolerate ±30%.
        std::fs::write(&cur, doc(&record("e2", "rq", 800.0, 0.1, "migrations/s"))).unwrap();
        let code = bench_diff(&[
            "--baseline".into(),
            base.to_str().unwrap().into(),
            "--current".into(),
            cur.to_str().unwrap().into(),
        ])
        .unwrap();
        assert_eq!(code, ExitCode::SUCCESS);
    }

    #[test]
    fn p99_ceiling_gates_absolutely_and_only_when_measured() {
        let dir = std::env::temp_dir().join("xtask-bench-diff-p99");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let cur = dir.join("cur.json");
        let sim = |p99: &str| {
            format!(
                "{{\"experiment\": \"e10\", \"scenario\": \"s\", \"backend\": \"sim\", \
                 \"throughput\": 1000.0, \"throughput_unit\": \"ops/s\", \
                 \"violating_idle\": 0.1, \"p99_sched_latency_us\": {p99}}}"
            )
        };
        std::fs::write(&base, doc(&sim("100.0"))).unwrap();
        std::fs::write(&cur, doc(&sim("9000.0"))).unwrap();
        let run = |ceiling: Option<&str>| {
            let mut args = vec![
                "--baseline".to_string(),
                base.to_str().unwrap().into(),
                "--current".into(),
                cur.to_str().unwrap().into(),
            ];
            if let Some(c) = ceiling {
                args.push("--p99-ceiling-us".into());
                args.push(c.into());
            }
            bench_diff(&args).unwrap()
        };
        // Without the flag nothing gates on latency (old behaviour).
        assert_eq!(run(None), ExitCode::SUCCESS);
        // With it, 9000us busts a 5000us ceiling even though the relative
        // throughput and idle gates are clean.
        assert_eq!(run(Some("5000")), ExitCode::FAILURE);
        assert_eq!(run(Some("10000")), ExitCode::SUCCESS);
        // A p99 that *disappears* relative to the baseline is a broken
        // recorder, not a pass: the SLO must not silently disarm.
        std::fs::write(&cur, doc(&sim("null"))).unwrap();
        assert_eq!(run(Some("5000")), ExitCode::FAILURE);
        // But a record that never measured one (model/rq) is never gated.
        std::fs::write(&base, doc(&sim("null"))).unwrap();
        assert_eq!(run(Some("5000")), ExitCode::SUCCESS);
    }

    #[test]
    fn p99_ceiling_also_gates_the_executors_end_to_end_quantiles() {
        let dir = std::env::temp_dir().join("xtask-bench-diff-e2e");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let cur = dir.join("cur.json");
        let exec = |p99: &str, p999: &str| {
            format!(
                "{{\"experiment\": \"e26\", \"scenario\": \"s\", \"backend\": \"exec\", \
                 \"throughput\": 1000.0, \"throughput_unit\": \"reqs/s\", \
                 \"violating_idle\": 0.0, \"e2e_p99_us\": {p99}, \"e2e_p999_us\": {p999}}}"
            )
        };
        std::fs::write(&base, doc(&exec("200.0", "800.0"))).unwrap();
        let run = |ceiling: Option<&str>| {
            let mut args = vec![
                "--baseline".to_string(),
                base.to_str().unwrap().into(),
                "--current".into(),
                cur.to_str().unwrap().into(),
            ];
            if let Some(c) = ceiling {
                args.push("--p99-ceiling-us".into());
                args.push(c.into());
            }
            bench_diff(&args).unwrap()
        };
        // An injected e2e p99 regression above the ceiling fails even
        // though the relative gates see nothing wrong.
        std::fs::write(&cur, doc(&exec("9000.0", "9500.0"))).unwrap();
        assert_eq!(run(None), ExitCode::SUCCESS);
        assert_eq!(run(Some("5000")), ExitCode::FAILURE);
        assert_eq!(run(Some("10000")), ExitCode::SUCCESS);
        // The tail quantile is gated on its own: a clean p99 does not
        // excuse a p999 over the ceiling.
        std::fs::write(&cur, doc(&exec("200.0", "9500.0"))).unwrap();
        assert_eq!(run(Some("5000")), ExitCode::FAILURE);
        // Quantiles that disappear relative to the baseline mean the
        // recorder broke, not that the SLO passed.
        std::fs::write(&cur, doc(&exec("null", "null"))).unwrap();
        assert_eq!(run(Some("5000")), ExitCode::FAILURE);
        // A backend that never measured them (everything but exec) is
        // never gated.
        std::fs::write(&base, doc(&exec("null", "null"))).unwrap();
        assert_eq!(run(Some("5000")), ExitCode::SUCCESS);
    }

    #[test]
    fn tasks_per_acquisition_collapse_is_gated_relatively() {
        let dir = std::env::temp_dir().join("xtask-bench-diff-batch");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let cur = dir.join("cur.json");
        // Sub-floor wall clock, so only the batch gate can catch this row.
        let batch = |tpa: &str| {
            format!(
                "{{\"experiment\": \"e23\", \"scenario\": \"s\", \"backend\": \"rq-deque\", \
                 \"throughput\": 100000.0, \"throughput_unit\": \"migrations/s\", \
                 \"violating_idle\": 0.0, \"wall_ms\": 0.05, \"steal_batch_k\": \"8\", \
                 \"tasks_per_acquisition\": {tpa}}}"
            )
        };
        let run = |baseline: &str, current: &str| {
            std::fs::write(&base, doc(baseline)).unwrap();
            std::fs::write(&cur, doc(current)).unwrap();
            bench_diff(&[
                "--baseline".into(),
                base.to_str().unwrap().into(),
                "--current".into(),
                cur.to_str().unwrap().into(),
            ])
            .unwrap()
        };
        // Breathing within double tolerance (±30%) passes...
        assert_eq!(run(&batch("3.0"), &batch("2.2")), ExitCode::SUCCESS);
        // ...a collapse towards one-at-a-time stealing fails...
        assert_eq!(run(&batch("3.0"), &batch("1.1")), ExitCode::FAILURE);
        // ...and rows that never measured it (schema v5 null) are not gated.
        assert_eq!(run(&batch("null"), &batch("null")), ExitCode::SUCCESS);
    }

    #[test]
    fn event_count_growth_is_gated_and_shrinkage_is_not() {
        let dir = std::env::temp_dir().join("xtask-bench-diff-events");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let cur = dir.join("cur.json");
        // Sub-floor wall clock: only the events gate can catch this row.
        let sim = |events: &str| {
            format!(
                "{{\"experiment\": \"e24\", \"scenario\": \"s\", \"backend\": \"sim-event\", \
                 \"throughput\": 100000.0, \"throughput_unit\": \"migrations/s\", \
                 \"violating_idle\": 0.0, \"wall_ms\": 0.05, \"sim_engine\": \"event\", \
                 \"events_processed\": {events}}}"
            )
        };
        let run = |baseline: &str, current: &str| {
            std::fs::write(&base, doc(baseline)).unwrap();
            std::fs::write(&cur, doc(current)).unwrap();
            bench_diff(&[
                "--baseline".into(),
                base.to_str().unwrap().into(),
                "--current".into(),
                cur.to_str().unwrap().into(),
            ])
            .unwrap()
        };
        // Within +15% passes...
        assert_eq!(run(&sim("2000000"), &sim("2100000")), ExitCode::SUCCESS);
        // ...an asymptotic blow-up fails...
        assert_eq!(run(&sim("2000000"), &sim("6000000")), ExitCode::FAILURE);
        // ...processing fewer events is an improvement, never gated...
        assert_eq!(run(&sim("6000000"), &sim("2000000")), ExitCode::SUCCESS);
        // ...and rows that never measured it (schema v6 null) are not gated.
        assert_eq!(run(&sim("null"), &sim("null")), ExitCode::SUCCESS);
    }

    #[test]
    fn idle_regressions_and_missing_records_fail() {
        let dir = std::env::temp_dir().join("xtask-bench-diff-idle");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let idle = dir.join("idle.json");
        let missing = dir.join("missing.json");
        std::fs::write(&base, doc(&record("e3", "model", 100.0, 0.1, "ops/s"))).unwrap();
        std::fs::write(&idle, doc(&record("e3", "model", 100.0, 0.4, "ops/s"))).unwrap();
        std::fs::write(&missing, doc(&record("e4", "model", 100.0, 0.1, "ops/s"))).unwrap();
        let run = |current: &std::path::Path| {
            bench_diff(&[
                "--baseline".into(),
                base.to_str().unwrap().into(),
                "--current".into(),
                current.to_str().unwrap().into(),
            ])
            .unwrap()
        };
        assert_eq!(run(&idle), ExitCode::FAILURE, "idle fraction rose by 0.3 > 0.15 abs");
        assert_eq!(run(&missing), ExitCode::FAILURE, "baseline record disappeared");
    }
}
