//! Property-based tests of the scheduler model's invariants.
//!
//! The exhaustive checker covers every configuration within a small scope;
//! these properties push the same invariants to much larger random
//! configurations, random interleavings and random policies, which is the
//! second half of the Leon substitution described in DESIGN.md §2.

use optimistic_sched::core::prelude::*;
use proptest::prelude::*;

fn arbitrary_loads() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..6, 2..24)
}

fn arbitrary_schedule() -> impl Strategy<Value = RoundSchedule> {
    prop_oneof![
        Just(RoundSchedule::Sequential),
        Just(RoundSchedule::AllSelectThenSteal),
        any::<u64>().prop_map(RoundSchedule::Seeded),
    ]
}

proptest! {
    /// No balancing round ever loses, duplicates or invents a thread.
    #[test]
    fn rounds_conserve_threads(loads in arbitrary_loads(), schedule in arbitrary_schedule(), rounds in 1usize..8) {
        let mut system = SystemState::from_loads(&loads);
        let total = system.total_threads();
        let balancer = Balancer::new(Policy::simple());
        let executor = ConcurrentRound::new(&balancer);
        for round in 0..rounds {
            executor.execute(&mut system, &schedule.for_round(round));
            prop_assert_eq!(system.total_threads(), total);
            prop_assert!(system.tasks_are_unique());
        }
    }

    /// The Listing 1 policy always converges, under any interleaving, within
    /// a budget proportional to the number of threads.
    #[test]
    fn listing1_always_converges(loads in arbitrary_loads(), seed in any::<u64>()) {
        let mut system = SystemState::from_loads(&loads);
        let budget = 8 * (system.total_threads() as usize + 1);
        let balancer = Balancer::new(Policy::simple());
        let result = converge(&mut system, &balancer, RoundSchedule::Seeded(seed), budget);
        prop_assert!(result.converged(), "loads {:?} did not converge", loads);
        prop_assert!(system.is_work_conserving());
    }

    /// Work conservation is absorbing: once reached, further rounds never
    /// reintroduce an idle-while-overloaded state (no thread arrivals).
    #[test]
    fn work_conservation_is_absorbing(loads in arbitrary_loads(), seed in any::<u64>()) {
        let mut system = SystemState::from_loads(&loads);
        let balancer = Balancer::new(Policy::simple());
        let budget = 8 * (system.total_threads() as usize + 1);
        let _ = converge(&mut system, &balancer, RoundSchedule::Seeded(seed), budget);
        prop_assume!(system.is_work_conserving());
        let executor = ConcurrentRound::new(&balancer);
        for round in 0..4usize {
            executor.execute(&mut system, &RoundSchedule::Seeded(seed ^ round as u64));
            prop_assert!(system.is_work_conserving());
        }
    }

    /// P2 at scale: whenever the Listing 1 filter admits a steal on the live
    /// state, performing it strictly decreases the potential.
    #[test]
    fn filtered_steals_strictly_decrease_the_potential(loads in arbitrary_loads()) {
        let system = SystemState::from_loads(&loads);
        let balancer = Balancer::new(Policy::simple());
        let snapshot = SystemSnapshot::capture(&system);
        for thief in system.core_ids() {
            for victim in system.core_ids() {
                if thief == victim
                    || !balancer.policy().filter.can_steal(snapshot.core(thief), snapshot.core(victim))
                {
                    continue;
                }
                let mut working = system.clone();
                let before = potential(&working, LoadMetric::NrThreads);
                let outcome = balancer.steal(&mut working, thief, victim);
                prop_assert!(outcome.is_success());
                prop_assert!(potential(&working, LoadMetric::NrThreads) < before);
            }
        }
    }

    /// Lemma 1 at scale: an idle thief keeps a candidate iff it is
    /// overloaded, for random configurations far beyond the exhaustive scope.
    #[test]
    fn lemma1_holds_on_large_random_configurations(loads in prop::collection::vec(0usize..5, 2..256)) {
        let system = SystemState::from_loads(&loads);
        let snapshot = SystemSnapshot::capture(&system);
        let filter = DeltaFilter::listing1();
        let any_overloaded = !system.overloaded_cores().is_empty();
        for thief in system.idle_cores() {
            let candidates: Vec<_> = snapshot
                .others(thief)
                .into_iter()
                .filter(|v| filter.can_steal(snapshot.core(thief), v))
                .collect();
            if any_overloaded {
                prop_assert!(!candidates.is_empty());
            }
            for c in candidates {
                prop_assert!(system.core(c.id).is_overloaded());
            }
        }
    }

    /// The steal phase never migrates the victim's running thread and never
    /// leaves the victim idle, for any policy in the built-in set.
    #[test]
    fn steals_never_empty_the_victim(loads in arbitrary_loads(), which in 0usize..3) {
        let policy = match which {
            0 => Policy::simple(),
            1 => Policy::weighted(),
            _ => Policy::greedy(),
        };
        let balancer = Balancer::new(policy);
        let mut system = SystemState::from_loads(&loads);
        let report = balancer.run_round_sequential(&mut system);
        for attempt in report.successes() {
            let victim = attempt.outcome.victim().unwrap();
            prop_assert!(!system.core(victim).is_idle());
        }
    }
}
