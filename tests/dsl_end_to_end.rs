//! End-to-end tests of the DSL: one policy source, two backends, identical
//! behaviour to the hand-written policies.

use optimistic_sched::core::prelude::*;
use optimistic_sched::dsl;
use optimistic_sched::verify::Scope;
use proptest::prelude::*;

#[test]
fn stdlib_listing1_verifies_and_greedy_does_not() {
    let listing1 = dsl::verify_source(dsl::stdlib::LISTING1, &Scope::small()).unwrap();
    assert!(listing1.is_work_conserving(), "{}", listing1.report);
    assert!(listing1.warnings.is_empty());

    let greedy = dsl::verify_source(dsl::stdlib::GREEDY, &Scope::small()).unwrap();
    assert!(!greedy.is_work_conserving(), "{}", greedy.report);
    assert_eq!(greedy.warnings.len(), 1, "the phase checker warns about the self-free filter");
}

#[test]
fn generated_rust_mirrors_the_interpreter() {
    // The code generator and the interpreter share the AST; the golden
    // strings here pin the critical expressions so the two cannot drift
    // silently.
    let def = dsl::parse(dsl::stdlib::LISTING1).unwrap();
    let code = dsl::generate_rust(&def);
    assert!(code.contains("((victim.load(metric) as i128 - this.load(metric) as i128) >= 2i128)"));
    assert!(code.contains("LoadMetric::NrThreads"));

    let weighted = dsl::parse(dsl::stdlib::WEIGHTED).unwrap();
    let code = dsl::generate_rust(&weighted);
    assert!(code.contains("LoadMetric::Weighted"));
    assert!(code.contains("lightest_ready_weight.unwrap_or(0)"));
}

#[test]
fn weighted_dsl_policy_verifies() {
    let verified = dsl::verify_source(dsl::stdlib::WEIGHTED, &Scope::new(3, 4, 32)).unwrap();
    assert!(verified.is_work_conserving(), "{}", verified.report);
}

proptest! {
    /// The DSL-compiled Listing 1 policy and the hand-written one agree on
    /// every step of every run, for random initial configurations and random
    /// interleavings.
    #[test]
    fn dsl_and_handwritten_listing1_are_behaviourally_identical(
        loads in prop::collection::vec(0usize..6, 2..16),
        seed in any::<u64>(),
    ) {
        let compiled = dsl::compile_source(dsl::stdlib::LISTING1).unwrap();
        let dsl_balancer = Balancer::new(compiled.policy);
        let rust_balancer = Balancer::new(Policy::simple());

        let mut via_dsl = SystemState::from_loads(&loads);
        let mut via_rust = via_dsl.clone();
        let budget = 8 * (via_dsl.total_threads() as usize + 1);
        let a = converge(&mut via_dsl, &dsl_balancer, RoundSchedule::Seeded(seed), budget);
        let b = converge(&mut via_rust, &rust_balancer, RoundSchedule::Seeded(seed), budget);

        prop_assert_eq!(a.rounds, b.rounds);
        prop_assert_eq!(a.total_successes(), b.total_successes());
        prop_assert_eq!(a.total_failures(), b.total_failures());
        prop_assert_eq!(
            via_dsl.loads(LoadMetric::NrThreads),
            via_rust.loads(LoadMetric::NrThreads)
        );
    }

    /// The DSL choose rule is a step-2 decision and therefore cannot affect
    /// convergence: `first`, `max` and `min` variants of Listing 1 all reach
    /// work conservation on random configurations.
    #[test]
    fn dsl_choose_rules_do_not_affect_convergence(
        which in 0usize..3,
        loads in prop::collection::vec(0usize..5, 2..10),
        seed in any::<u64>(),
    ) {
        let choose = match which {
            0 => "first",
            1 => "max victim.load",
            _ => "min victim.load",
        };
        let source = format!(
            "policy variant {{ metric threads; filter = victim.load - self.load >= 2; choose = {choose}; steal = 1; }}"
        );
        let compiled = dsl::compile_source(&source).unwrap();
        let balancer = Balancer::new(compiled.policy);
        let mut system = SystemState::from_loads(&loads);
        let budget = 8 * (system.total_threads() as usize + 1);
        let result = converge(&mut system, &balancer, RoundSchedule::Seeded(seed), budget);
        prop_assert!(result.converged());
        prop_assert!(system.is_work_conserving());
    }
}
