//! Property-based tests of topology-aware stealing and hierarchical
//! balancing on random machine shapes.
//!
//! The exhaustive hierarchy lemmas (`sched-verify`) cover one small NUMA
//! machine; these properties push the same invariants to random topologies
//! (sockets × cores × LLC splits × SMT) and random load vectors.

use std::sync::Arc;

use optimistic_sched::core::prelude::*;
use optimistic_sched::topology::{MachineTopology, StealLevel, TopologyBuilder};
use proptest::prelude::*;

/// A random regular machine: 1–3 sockets, 1–3 cores per socket, 1–2 LLC
/// groups, SMT 1–2 (at most 18 CPUs).
fn arbitrary_topology() -> impl Strategy<Value = Arc<MachineTopology>> {
    (1usize..=3, 1usize..=3, 1usize..=2, 1usize..=2).prop_map(|(sockets, cores, llcs, smt)| {
        Arc::new(
            TopologyBuilder::new()
                .sockets(sockets)
                .cores_per_socket(cores)
                .llcs_per_socket(llcs.min(cores))
                .smt(smt)
                .build(),
        )
    })
}

/// A deterministic load vector (up to 5 threads per CPU) derived from a
/// seed, sized to the machine.  The offline proptest shim has no
/// `prop_flat_map`, so shape-dependent data is derived rather than drawn.
fn derive_loads(topo: &MachineTopology, seed: u64) -> Vec<usize> {
    let mut loads = vec![0usize; topo.nr_cpus()];
    let mut state = seed | 1;
    for slot in loads.iter_mut() {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        *slot = (state % 6) as usize;
    }
    loads
}

fn system_with(topo: &Arc<MachineTopology>, loads: &[usize]) -> SystemState {
    let mut system = SystemState::with_topology(topo);
    let mut next = 0u64;
    for (core, &n) in loads.iter().enumerate() {
        for _ in 0..n {
            system.core_mut(CoreId(core)).enqueue(Task::new(TaskId(next)));
            next += 1;
        }
    }
    system
}

fn topo_policy(topo: &Arc<MachineTopology>) -> Policy {
    Policy::simple()
        .with_choice(Box::new(TopologyAwareChoice::new(Arc::clone(topo), LoadMetric::NrThreads)))
}

proptest! {
    /// The distance-ordered victim search never selects a victim at a
    /// farther level while a loaded victim exists at a closer level that
    /// meets that level's steal threshold (default 2 for local levels).
    #[test]
    fn victim_search_never_skips_a_closer_loaded_victim(
        topo in arbitrary_topology(),
        seed in any::<u64>(),
    ) {
        let loads = derive_loads(&topo, seed);
        let system = system_with(&topo, &loads);
        let snapshot = SystemSnapshot::capture(&system);
        let choice = TopologyAwareChoice::new(Arc::clone(&topo), LoadMetric::NrThreads);
        let filter = DeltaFilter::listing1();
        for thief in system.core_ids() {
            let thief_snap = *snapshot.core(thief);
            let candidates: Vec<_> = snapshot
                .others(thief)
                .into_iter()
                .filter(|v| filter.can_steal(&thief_snap, v))
                .collect();
            let Some(victim) = choice.choose(&thief_snap, &candidates) else {
                prop_assert!(candidates.is_empty(), "choice must not block a non-empty list");
                continue;
            };
            prop_assert!(candidates.iter().any(|c| c.id == victim), "victim must be a candidate");
            let chosen_level = topo.steal_level(thief, victim);
            // No candidate at a strictly closer level may meet its own
            // threshold (victim load >= thief load + 2 for every level
            // closer than Remote under the default thresholds).
            for closer in &candidates {
                let level = topo.steal_level(thief, closer.id);
                if level < chosen_level {
                    prop_assert!(
                        closer.nr_threads < thief_snap.nr_threads + 2,
                        "thief {thief}: chose {victim} at {chosen_level} although {} at {level} \
                         has {} threads (thief has {})",
                        closer.id,
                        closer.nr_threads,
                        thief_snap.nr_threads
                    );
                }
            }
        }
    }

    /// Hierarchical balancing preserves work conservation on random
    /// topologies: it converges within a linear budget, conserves every
    /// thread, and stays work-conserving afterwards.
    #[test]
    fn hierarchical_balancing_preserves_work_conservation(
        topo in arbitrary_topology(),
        seed in any::<u64>(),
    ) {
        let loads = derive_loads(&topo, seed);
        let mut system = system_with(&topo, &loads);
        let total = system.total_threads();
        let balancer = Balancer::new(topo_policy(&topo));
        let hier = HierarchicalRound::new(&balancer, Arc::clone(&topo));
        let budget = 8 * (total as usize + 1);
        let (rounds, _) = hier.converge(&mut system, &RoundSchedule::Seeded(seed), budget);
        prop_assert!(rounds.is_some(), "loads {loads:?} did not converge hierarchically");
        prop_assert!(system.is_work_conserving());
        prop_assert_eq!(system.total_threads(), total);
        prop_assert!(system.tasks_are_unique());
        // Absorbing: further hierarchical rounds never reintroduce a
        // violation.
        for round in 0..3usize {
            hier.execute(&mut system, &RoundSchedule::Seeded(seed ^ round as u64));
            prop_assert!(system.is_work_conserving());
        }
    }

    /// Steals admitted at an inner level never change the region balance at
    /// that level or coarser, on random topologies (the hierarchy lemma at
    /// proptest scale).
    #[test]
    fn inner_steals_preserve_coarser_region_balance(
        topo in arbitrary_topology(),
        seed in any::<u64>(),
    ) {
        let loads = derive_loads(&topo, seed);
        let system = system_with(&topo, &loads);
        let balancer = Balancer::new(Policy::simple());
        let snapshot = SystemSnapshot::capture(&system);
        for thief in system.core_ids() {
            for victim in system.core_ids() {
                if thief == victim
                    || !balancer
                        .policy()
                        .filter
                        .can_steal(snapshot.core(thief), snapshot.core(victim))
                {
                    continue;
                }
                let steal_level = topo.steal_level(thief, victim);
                let before = system.loads(LoadMetric::NrThreads);
                let mut working = system.clone();
                if !balancer.steal(&mut working, thief, victim).is_success() {
                    continue;
                }
                let after = working.loads(LoadMetric::NrThreads);
                for level in StealLevel::ALL {
                    if level >= steal_level {
                        prop_assert!(
                            level_potential(&before, &topo, level)
                                == level_potential(&after, &topo, level),
                            "steal {victim} -> {thief} at {steal_level} changed the {level} potential"
                        );
                    }
                }
            }
        }
    }
}
