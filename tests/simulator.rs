//! Integration tests of the simulator experiments: the *shape* of the
//! paper's motivation numbers (E9/E10) must reproduce.

use optimistic_sched::core::Policy;
use optimistic_sched::sim::{
    CfsBugs, CfsLikeScheduler, Engine, OptimisticScheduler, SimConfig, SimResult,
};
use optimistic_sched::topology::TopologyBuilder;
use optimistic_sched::workloads::{BuildWorkload, OltpWorkload, ScientificWorkload, Workload};

fn run(topo_sockets: usize, workload: &Workload, buggy: bool) -> SimResult {
    let topo = TopologyBuilder::new().sockets(topo_sockets).cores_per_socket(8).build();
    let scheduler: Box<dyn optimistic_sched::sim::SimScheduler> = if buggy {
        Box::new(CfsLikeScheduler::new(CfsBugs::all()))
    } else {
        Box::new(OptimisticScheduler::new(Policy::simple()))
    };
    Engine::new(SimConfig::default(), Some(&topo), workload, scheduler).run()
}

#[test]
fn scientific_workload_degrades_many_fold_shape() {
    // §1: "many-fold performance degradation in the case of scientific
    // applications".  On a two-node machine the buggy baseline should lose
    // a large factor, and the verified scheduler should stay near ideal.
    let workload = ScientificWorkload {
        nr_threads: 16,
        iterations: 6,
        phase_ns: 4_000_000,
        jitter: 0.05,
        seed: 42,
        fork_on_core: Some(0),
    }
    .generate();
    let good = run(2, &workload, false);
    let bad = run(2, &workload, true);
    assert!(good.finished && bad.finished);
    let slowdown = bad.slowdown_vs(&good);
    assert!(slowdown > 1.4, "expected a substantial slowdown, got {slowdown:.2}x");
    assert!(
        bad.violating_idle_fraction() > 0.10,
        "the buggy baseline should waste cores: {:.3}",
        bad.violating_idle_fraction()
    );
    assert!(
        good.violating_idle_fraction() < bad.violating_idle_fraction(),
        "the verified scheduler should waste less"
    );
}

#[test]
fn database_workload_loses_throughput_shape() {
    // §1: "up to 25% decrease in throughput for realistic database
    // workloads".  The exact figure depends on the machine; the shape —
    // a clearly measurable drop, in the tens of percent, not a collapse —
    // is what must reproduce.
    let workload = OltpWorkload {
        nr_workers: 32,
        transactions: 40,
        service_ns: 500_000,
        think_ns: 250_000,
        jitter: 0.2,
        seed: 7,
        initial_spread: 4,
    }
    .generate();
    let good = run(2, &workload, false);
    let bad = run(2, &workload, true);
    assert!(good.finished && bad.finished);
    let kept = bad.relative_throughput(&good);
    assert!(kept < 0.95, "the buggy baseline should lose measurable throughput (kept {:.2})", kept);
    assert!(kept > 0.4, "but OLTP should not collapse entirely (kept {:.2})", kept);
}

#[test]
fn verified_scheduler_wastes_fewer_cores_on_a_build_than_the_buggy_baseline() {
    // Build jobs arrive in waves pinned to two cores, so some violating idle
    // time is inherent to the 4 ms balancing period; the verified balancer
    // must keep it moderate and strictly below the buggy baseline's.
    let workload = BuildWorkload::with_jobs(96).generate();
    let good = run(2, &workload, false);
    let bad = run(2, &workload, true);
    assert!(good.finished && bad.finished);
    assert!(
        good.violating_idle_fraction() < 0.35,
        "the optimistic balancer should keep cores reasonably busy: {:.3}",
        good.violating_idle_fraction()
    );
    // The violating-idle fractions of the two schedulers are a near tie on
    // this workload (the wave arrivals force idle time on everyone while the
    // balancing period elapses), so the comparison gets a small tolerance;
    // the makespan ordering below is the robust property.
    assert!(
        good.violating_idle_fraction() <= bad.violating_idle_fraction() + 0.02,
        "the verified balancer should waste no more cores than the buggy baseline ({:.3} vs {:.3})",
        good.violating_idle_fraction(),
        bad.violating_idle_fraction()
    );
    assert!(good.makespan_ns <= bad.makespan_ns);
}

#[test]
fn scheduling_latency_is_bounded_by_the_balancing_period() {
    // Reactivity (§1): a runnable thread waits at most a few balancing
    // periods before it first runs under the verified scheduler.
    let workload = ScientificWorkload {
        nr_threads: 32,
        iterations: 3,
        phase_ns: 4_000_000,
        jitter: 0.0,
        seed: 9,
        fork_on_core: Some(0),
    }
    .generate();
    let result = run(2, &workload, false);
    assert!(result.finished);
    let p99 = result.latency.quantile(0.99);
    assert!(
        p99 <= 16 * SimConfig::default().balance_period_ns,
        "p99 scheduling latency {p99} ns is too large"
    );
}

#[test]
fn the_degradation_reproduces_at_several_machine_sizes() {
    // The wasted-cores effect is not an artefact of one machine size: the
    // buggy baseline loses a substantial factor on both a two-node and a
    // four-node machine (the absolute factor depends on how much of the
    // machine the averaging bug manages to hide, not on the node count).
    let make = |cores: usize| {
        ScientificWorkload {
            nr_threads: cores,
            iterations: 4,
            phase_ns: 4_000_000,
            jitter: 0.0,
            seed: 11,
            fork_on_core: Some(0),
        }
        .generate()
    };
    let w2 = make(16);
    let slow2 = run(2, &w2, true).slowdown_vs(&run(2, &w2, false));
    let w4 = make(32);
    let slow4 = run(4, &w4, true).slowdown_vs(&run(4, &w4, false));
    assert!(slow2 > 1.3, "2-node degradation too small: {slow2:.2}x");
    assert!(slow4 > 1.3, "4-node degradation too small: {slow4:.2}x");
}
