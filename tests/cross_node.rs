//! Hierarchical balancing across NUMA nodes (the §5 future work), and the
//! negative result when the hierarchy is pushed into the filter.

use std::sync::Arc;

use optimistic_sched::core::prelude::*;
use optimistic_sched::topology::TopologyBuilder;

fn hot_core_on_node0(
    topo: &optimistic_sched::topology::MachineTopology,
    threads: u64,
) -> SystemState {
    let mut system = SystemState::with_topology(topo);
    for t in 0..threads {
        system.core_mut(CoreId(0)).enqueue(Task::new(TaskId(t)));
    }
    system
}

#[test]
fn numa_aware_choice_preserves_work_conservation() {
    let topo = Arc::new(TopologyBuilder::new().sockets(2).cores_per_socket(4).build());
    let policy = Policy::simple()
        .with_choice(Box::new(NumaAwareChoice::new(Arc::clone(&topo), LoadMetric::NrThreads)));
    let balancer = Balancer::new(policy);
    let mut system = hot_core_on_node0(&topo, 16);
    let result = converge(&mut system, &balancer, RoundSchedule::AllSelectThenSteal, 256);
    assert!(result.converged());
    assert!(system.is_work_conserving());
}

#[test]
fn group_aware_choice_preserves_work_conservation() {
    let topo = Arc::new(TopologyBuilder::eight_node_numa());
    let policy = Policy::simple()
        .with_choice(Box::new(GroupAwareChoice::new(Arc::clone(&topo), LoadMetric::NrThreads)));
    let balancer = Balancer::new(policy);
    let mut system = hot_core_on_node0(&topo, 2 * topo.nr_cpus() as u64);
    let result =
        converge(&mut system, &balancer, RoundSchedule::AllSelectThenSteal, 16 * topo.nr_cpus());
    assert!(result.converged());
}

#[test]
fn node_restricted_filter_violates_work_conservation_across_nodes() {
    // Pushing the hierarchy into step 1 is wrong: an idle node next to an
    // overloaded one can never help, so the idle-while-overloaded state
    // persists forever.
    let topo = Arc::new(TopologyBuilder::new().sockets(2).cores_per_socket(4).build());
    let policy = Policy::new(
        LoadMetric::NrThreads,
        Box::new(NodeRestrictedFilter::new(DeltaFilter::listing1())),
        Box::new(MaxLoadChoice::new(LoadMetric::NrThreads)),
        Box::new(StealOne),
    );
    let balancer = Balancer::new(policy);
    // All the work on node 1 (cores 4..8); node 0 is idle and stays idle.
    let mut system = SystemState::with_topology(&topo);
    for t in 0..12u64 {
        system.core_mut(CoreId(4)).enqueue(Task::new(TaskId(t)));
    }
    let result = converge(&mut system, &balancer, RoundSchedule::AllSelectThenSteal, 128);
    // Node-local stealing spreads work inside node 1, but node 0 never gets
    // any, so the system never becomes work-conserving.
    assert!(!result.converged(), "the node-restricted filter must starve node 0");
    assert!(system.core(CoreId(0)).is_idle());
    assert!(!system.is_work_conserving());
}

#[test]
fn numa_aware_choice_prefers_local_victims_when_available() {
    let topo = Arc::new(TopologyBuilder::new().sockets(2).cores_per_socket(4).build());
    let mut system = SystemState::with_topology(&topo);
    // One overloaded core on each node; the thief (core 1) is on node 0.
    for t in 0..3u64 {
        system.core_mut(CoreId(0)).enqueue(Task::new(TaskId(t)));
        system.core_mut(CoreId(4)).enqueue(Task::new(TaskId(100 + t)));
    }
    let policy = Policy::simple()
        .with_choice(Box::new(NumaAwareChoice::new(Arc::clone(&topo), LoadMetric::NrThreads)));
    let balancer = Balancer::new(policy);
    let snapshot = SystemSnapshot::capture(&system);
    let selection = balancer.select(&snapshot, CoreId(1));
    assert_eq!(selection.chosen, Some(CoreId(0)), "the local overloaded core is preferred");
    // Both overloaded cores pass the filter, so the choice is genuinely a
    // step-2 decision.
    assert_eq!(selection.candidates.len(), 2);
}
