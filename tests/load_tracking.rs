//! Property-based tests of the load-tracking layer: niceness/weight
//! conversion and PELT-style geometric decay.
//!
//! The exhaustive decay lemmas (`sched-verify`) cover small scopes; these
//! properties push the same invariants to random magnitudes, half-lives
//! and update schedules.

use optimistic_sched::core::prelude::*;
use proptest::prelude::*;

proptest! {
    #[test]
    fn nice_is_always_clamped_to_the_conventional_range(raw in -128i64..=127) {
        let nice = Nice::new(raw as i8);
        prop_assert!((-20..=19).contains(&nice.value()));
        // Already-in-range values pass through unchanged.
        if (-20..=19).contains(&raw) {
            prop_assert_eq!(nice.value() as i64, raw);
        }
    }

    #[test]
    fn weight_from_nice_is_strictly_monotone(a in -20i64..=19, b in -20i64..=19) {
        let wa = Weight::from_nice(Nice::new(a as i8));
        let wb = Weight::from_nice(Nice::new(b as i8));
        // A nicer (higher) value always weighs strictly less.
        prop_assert_eq!(a < b, wa > wb);
        prop_assert_eq!(a == b, wa == wb);
        prop_assert!(wa >= Weight::MIN && wa <= Weight::MAX);
    }

    #[test]
    fn decay_never_negative_never_exceeds_undecayed_idempotent_at_zero(
        scaled in 0u64..=(1u64 << 40),
        elapsed in 0u64..=(1u64 << 40),
        half_life in 1u64..=(1u64 << 34),
    ) {
        let decayed = decay_scaled(scaled, elapsed, half_life);
        // Unsigned by construction, but the bound matters: decay can never
        // exceed the undecayed sum, and zero elapsed time is the identity.
        prop_assert!(decayed <= scaled);
        prop_assert_eq!(decay_scaled(scaled, 0, half_life), scaled);
        // One full half-life halves exactly (floor division).
        prop_assert_eq!(decay_scaled(scaled, half_life, half_life), scaled / 2);
    }

    #[test]
    fn decay_is_monotone_in_elapsed_time(
        scaled in 0u64..=(1u64 << 40),
        a in 0u64..=(1u64 << 30),
        b in 0u64..=(1u64 << 30),
        half_life in 1u64..=(1u64 << 24),
    ) {
        let (early, late) = (a.min(b), a.max(b));
        prop_assert!(
            decay_scaled(scaled, late, half_life) <= decay_scaled(scaled, early, half_life)
        );
    }

    #[test]
    fn pelt_update_stays_between_old_value_and_target(
        start in 0u64..=64,
        inst in 0u64..=64,
        elapsed in 0u64..=(1u64 << 30),
    ) {
        let tracker = PeltTracker::new(LoadMetric::NrThreads, 8_000_000);
        let mut state = TrackedLoad { scaled: start * TRACK_SCALE, last_update_ns: 0 };
        tracker.update(&mut state, elapsed, inst);
        let (lo, hi) = (
            (start * TRACK_SCALE).min(inst * TRACK_SCALE),
            (start * TRACK_SCALE).max(inst * TRACK_SCALE),
        );
        // Never negative, never overshooting the undecayed sum: the tracked
        // value is a convex mix of where it was and where it is heading.
        prop_assert!(state.scaled >= lo && state.scaled <= hi);
        // Zero elapsed time moves nothing (idempotence at a timestamp).
        let mut frozen = TrackedLoad { scaled: start * TRACK_SCALE, last_update_ns: elapsed };
        tracker.update(&mut frozen, elapsed, inst);
        prop_assert_eq!(frozen.scaled, start * TRACK_SCALE);
    }

    #[test]
    fn pelt_converges_to_any_steady_load(
        start in 0u64..=64,
        inst in 0u64..=64,
    ) {
        let half_life = 8_000_000u64;
        let tracker = PeltTracker::new(LoadMetric::NrThreads, half_life);
        let mut state = TrackedLoad { scaled: start * TRACK_SCALE, last_update_ns: 0 };
        // 64 half-lives of steady load wipe out any starting deviation.
        tracker.update(&mut state, 64 * half_life, inst);
        prop_assert_eq!(state.scaled, inst * TRACK_SCALE);
        prop_assert_eq!(state.load(), inst);
    }
}

/// The trait-level contract the backends rely on: instantaneous trackers
/// mirror the input through the tracked view, so `LoadMetric::Tracked` is
/// meaningful under every built-in tracker.
#[test]
fn instantaneous_trackers_keep_tracked_equal_to_instantaneous() {
    let mut system = SystemState::from_loads(&[0, 3, 1]);
    for tracker in [TrackerSpec::NrThreads.build(), TrackerSpec::Weighted.build()] {
        system.tick(123, tracker.as_ref());
        for core in system.cores() {
            assert_eq!(core.load(LoadMetric::Tracked), core.load(tracker.base()));
        }
    }
}
