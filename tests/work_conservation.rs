//! Cross-crate integration tests: the paper's headline results, end to end.
//!
//! These tests exercise `sched-core` and `sched-verify` together exactly the
//! way the experiment harness does, pinning down the results recorded in
//! EXPERIMENTS.md.

use optimistic_sched::core::prelude::*;
use optimistic_sched::verify::{
    analyze_convergence, find_non_conserving_cycle, verify_policy, ChoiceStrategy, Scope,
};

#[test]
fn listing1_policy_is_fully_verified() {
    let balancer = Balancer::new(Policy::simple());
    let report = verify_policy(&balancer, &Scope::small(), false);
    assert!(report.is_work_conserving(), "{report}");
    assert_eq!(report.lemmas.len(), 5);
    assert!(report.lemmas.iter().all(|l| l.is_proved()));
}

#[test]
fn listing1_policy_survives_adversarial_choices() {
    // The paper's central simplification: nothing the choice step does can
    // break the proofs.  Quantify over every possible victim choice.
    let balancer = Balancer::new(Policy::simple());
    let analysis = analyze_convergence(&balancer, &Scope::small(), ChoiceStrategy::Adversarial)
        .expect("Listing 1 is work-conserving even with adversarial choices");
    assert!(analysis.max_rounds >= 1);
}

#[test]
fn the_papers_three_core_pingpong_is_found_verbatim() {
    // §4.3: "consider a three-core system where core 0 is idle, core 1 has
    // 1 thread and core 2 has 2 threads".
    let balancer = Balancer::new(Policy::greedy());
    let witness =
        find_non_conserving_cycle(&balancer, &Scope::small(), ChoiceStrategy::Adversarial)
            .expect("the greedy filter is not work-conserving");
    // The witness cycle must stay within three cores and keep core counts:
    // every state has an idle core and an overloaded core simultaneously.
    for state in &witness.cycle {
        assert!(state.contains(&0), "an idle core persists: {state:?}");
        assert!(state.iter().any(|&l| l >= 2), "an overloaded core persists: {state:?}");
    }
    // The classic instance [0, 1, 2] is reachable in scope; the witness's
    // initial state must be one of the enumerated non-conserving states.
    assert!(witness.initial_loads.contains(&0));
}

#[test]
fn weighted_policy_is_work_conserving_too() {
    let balancer = Balancer::new(Policy::weighted());
    let report = verify_policy(&balancer, &Scope::new(3, 4, 32), false);
    assert!(report.is_work_conserving(), "{report}");
}

#[test]
fn exhaustive_bound_matches_executed_rounds() {
    // The worst-case N computed by the exhaustive analysis is an upper bound
    // for any concrete run within the same scope.
    let balancer = Balancer::new(Policy::simple());
    let scope = Scope::new(3, 5, 32);
    let bound = analyze_convergence(&balancer, &scope, ChoiceStrategy::PolicyChoice)
        .expect("work conserving")
        .max_rounds;
    for loads in optimistic_sched::verify::configurations(&scope) {
        let mut system = SystemState::from_loads(&loads);
        let result = converge(&mut system, &balancer, RoundSchedule::AllSelectThenSteal, bound);
        assert!(
            result.converged(),
            "loads {loads:?} did not converge within the exhaustive bound {bound}"
        );
    }
}

#[test]
fn batched_stealing_preserves_every_lemma() {
    let policy =
        Policy::simple().with_steal(Box::new(StealHalfImbalance::new(LoadMetric::NrThreads)));
    let balancer = Balancer::new(policy);
    let report = verify_policy(&balancer, &Scope::small(), false);
    assert!(report.is_work_conserving(), "{report}");
}

#[test]
fn convergence_scales_to_hundreds_of_cores() {
    // Not exhaustive — a single large concrete instance, as in E8.
    let mut loads = vec![0usize; 256];
    loads[0] = 512;
    let mut system = SystemState::from_loads(&loads);
    let balancer = Balancer::new(Policy::simple());
    let result = converge(&mut system, &balancer, RoundSchedule::AllSelectThenSteal, 4096);
    assert!(result.converged());
    assert!(system.is_work_conserving());
    assert_eq!(system.total_threads(), 512);
    assert!(system.tasks_are_unique());
}
