//! End-to-end over the declarative experiment pipeline: the committed
//! `experiments/*.scn` documents load through the public `sched-bench`
//! API, execute on real backends, and satisfy the invariant blocks they
//! declare.
//!
//! This is the workspace-level counterpart of the crate-internal parity
//! tests: it goes through [`sched_bench::load_dir`] exactly like an
//! out-of-tree author would (`experiments --json --scenarios DIR` uses the
//! same entry point).

use std::path::Path;

#[test]
fn the_experiments_directory_loads_and_matches_the_builtin_catalog() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("experiments");
    let loaded = sched_bench::load_dir(&dir).expect("experiments/*.scn must load");
    // `load_dir` must agree with the compiled-in catalog the binaries use:
    // the same documents (directory order is lexical, the catalog's is
    // numeric, so match by scenario name rather than position).
    let builtin = sched_bench::builtin();
    assert_eq!(loaded.len(), builtin.len());
    for from_disk in &loaded {
        let compiled_in = builtin
            .iter()
            .find(|s| s.doc.name == from_disk.doc.name)
            .unwrap_or_else(|| panic!("`{}` is not in the builtin catalog", from_disk.doc.name));
        assert_eq!(from_disk.doc, compiled_in.doc, "{} diverges", from_disk.doc.name);
        assert_eq!(from_disk.spec, compiled_in.spec, "{} diverges", from_disk.doc.name);
    }
}

#[test]
fn an_authored_document_runs_end_to_end_and_honors_its_expect_block() {
    // What the README's "Authoring experiments" section walks through:
    // write a document, load it, run it, check the declared invariants.
    let source = r#"
# Four cores, everything piled on the last one.
scenario "authored: hot tail of four" {
    experiment e2;
    topology flat(4);
    loads [0, 0, 0, 9];
    policy listing1 {
        metric threads;
        filter = victim.load - self.load >= 2;
        choose = max victim.load;
        steal  = 1;
    }
    driver replay;
    budget 96;
    backends ["model", "rq-deque"];
    expect {
        work_conservation;
        conservation_of_tasks;
        non_inversion;
    }
}
"#;
    let scenarios = sched_bench::load_str(source, "inline").expect("document must load");
    assert_eq!(scenarios.len(), 1);
    let scenario = &scenarios[0];
    assert_eq!(scenario.spec.loads, vec![0, 0, 0, 9]);

    let runner = sched_bench::ExperimentRunner::with_all_backends();
    let records = runner.run(scenario.spec.clone());
    let backends: Vec<&str> = records.iter().map(|r| r.backend).collect();
    assert_eq!(backends, vec!["model", "rq-deque"], "the backend matrix must filter");

    let violations = sched_bench::check_records(&scenario.spec, scenario.expectations(), &records);
    let rendered: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
    assert!(violations.is_empty(), "declared invariants must hold: {rendered:#?}");
}

#[test]
fn a_committed_scenario_satisfies_its_declared_invariants_on_every_backend() {
    // The fast deterministic one: Listing 1 replay on eight cores (e2).
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("experiments");
    let scenario = sched_bench::load_dir(&dir)
        .expect("experiments/*.scn must load")
        .into_iter()
        .find(|s| s.spec.id == sched_bench::ExperimentId::E2)
        .expect("e2 is committed");
    let (records, violations) = sched_bench::fuzz::check_scenario(&scenario);
    assert!(records > 0);
    let rendered: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
    assert!(violations.is_empty(), "{rendered:#?}");
}
