//! End-to-end tests of the lock-free (Chase–Lev) runqueue backend: the
//! same `MultiQueue` machinery as `tests/concurrent_rq.rs`, but with the
//! stealing phase resolved by CAS claims instead of double locks.
//!
//! The mutex-backend suite pins the protocol; this suite pins that the
//! lock-free discipline preserves every invariant the protocol needs —
//! conservation, convergence to work conservation, consistent stats —
//! plus the deque-specific edge cases (empty steal, single-element race,
//! ring overflow).

use optimistic_sched::core::{CoreId, Policy};
use optimistic_sched::rq::{DequeMultiQueue, MultiQueue, RqBackend as _};
use optimistic_sched::verify::lemmas;
use proptest::prelude::*;

#[test]
fn concurrent_rounds_never_lose_or_duplicate_tasks() {
    let loads: Vec<usize> = (0..16).map(|i| if i % 3 == 0 { 9 } else { 0 }).collect();
    let mq: DequeMultiQueue = MultiQueue::with_loads(&loads);
    let total = mq.total_threads();
    let policy = Policy::simple();
    for _ in 0..20 {
        mq.concurrent_round(&policy);
        assert_eq!(mq.total_threads(), total);
    }
}

#[test]
fn concurrent_balancing_converges_to_work_conservation() {
    let mut loads = vec![0usize; 32];
    loads[0] = 48;
    loads[7] = 16;
    let mq: DequeMultiQueue = MultiQueue::with_loads(&loads);
    let policy = Policy::simple();
    let (rounds, stats) = mq.converge(&policy, 256);
    assert!(rounds.is_some(), "lock-free optimistic balancing must converge");
    assert!(mq.is_work_conserving());
    assert_eq!(mq.total_threads(), 64);
    assert!(stats.successes() >= 31, "every idle core had to obtain work at least once");
}

#[test]
fn hierarchical_rounds_work_identically_on_the_lock_free_backend() {
    let topo = optimistic_sched::topology::TopologyBuilder::eight_node_numa();
    let mq: DequeMultiQueue = MultiQueue::with_topology(&topo);
    for _ in 0..16 {
        mq.spawn_on(CoreId(0));
    }
    let policy = Policy::simple();
    let (rounds, stats) = mq.converge_hierarchical(&policy, 128);
    assert!(rounds.is_some(), "hierarchical balancing must converge on the deque backend");
    assert!(mq.is_work_conserving());
    assert_eq!(mq.total_threads(), 16);
    assert!(stats.migrations() >= 7);
}

#[test]
fn steals_racing_wakeups_keep_stats_consistent() {
    // The deque twin of the mutex backend's stats race test: spawns land
    // on the victim while sixteen waves of thieves steal from it; after
    // the dust settles, counters and queue contents must agree.
    let mq = std::sync::Arc::new({
        let mq: DequeMultiQueue = MultiQueue::new(4);
        for _ in 0..8 {
            mq.spawn_on(CoreId(0));
        }
        mq
    });
    let policy = Policy::simple();
    let stats = optimistic_sched::rq::BalanceStats::new();
    std::thread::scope(|scope| {
        let waker = {
            let mq = std::sync::Arc::clone(&mq);
            scope.spawn(move || {
                for _ in 0..32 {
                    mq.spawn_on(CoreId(0));
                    std::thread::yield_now();
                }
            })
        };
        for _ in 0..16 {
            let stats = &stats;
            let policy = &policy;
            let mq = std::sync::Arc::clone(&mq);
            scope.spawn(move || {
                for thief in 1..4 {
                    let _ = mq.balance_once_recorded(CoreId(thief), policy, stats);
                }
            });
        }
        waker.join().unwrap();
    });
    assert_eq!(mq.total_threads(), 40, "8 initial + 32 woken, none lost or duplicated");
    let moved: u64 = (1..4).map(|c| mq.core(CoreId(c)).nr_threads_exact()).sum();
    assert!(moved <= stats.migrations(), "{moved} residents > {} counted", stats.migrations());
    assert_eq!(stats.migrations(), stats.successes(), "StealOne: one migration per success");
}

#[test]
fn empty_steal_reports_failure_not_phantom_work() {
    // Edge case: a victim with nothing to take.  The operation must
    // report a clean failure and change nothing.
    let mq: DequeMultiQueue = MultiQueue::with_loads(&[0, 0]);
    let policy = Policy::simple();
    let outcome = mq.balance_once(CoreId(0), &policy);
    assert!(!outcome.is_success());
    assert_eq!(mq.total_threads(), 0);
}

#[test]
fn cas_lemmas_hold_at_the_integration_level() {
    // The sched-verify CAS lemmas, exercised from the facade: the
    // deque-level steal-atomicity argument behind this whole suite.
    let report = lemmas::check_cas_steal_exclusivity(10, 128, 4);
    assert!(report.is_proved(), "{report}");
    let report = lemmas::check_cas_failure_implies_concurrent_success(25);
    assert!(report.is_proved(), "{report}");
    let report = lemmas::check_cas_single_element_winner(50);
    assert!(report.is_proved(), "{report}");
}

proptest! {
    /// Any load vector on any machine size: the deque backend converges
    /// to work conservation and conserves every task while doing it.
    #[test]
    fn deque_backend_converges_and_conserves(
        seed_loads in proptest::collection::vec(0usize..12, 2..10),
    ) {
        let total: usize = seed_loads.iter().sum();
        let mq: DequeMultiQueue = MultiQueue::with_loads(&seed_loads);
        let policy = Policy::simple();
        let (rounds, _stats) = mq.converge(&policy, 64 + 4 * total);
        prop_assert!(rounds.is_some());
        prop_assert!(mq.is_work_conserving());
        prop_assert_eq!(mq.total_threads(), total as u64);
    }

    /// Single-element owner-vs-thief race at the MultiQueue level: a
    /// two-core machine with one waiting task; whoever wins, exactly one
    /// task survives in exactly one place.
    #[test]
    fn single_waiting_task_ends_up_in_exactly_one_place(owner_first in proptest::arbitrary::any::<bool>()) {
        let mq: DequeMultiQueue = MultiQueue::with_loads(&[2, 0]);
        // Thief needs delta >= 1 to race the owner for the waiter.
        let thieving = Policy::new(
            optimistic_sched::core::LoadMetric::NrThreads,
            Box::new(optimistic_sched::core::policy::DeltaFilter::new(
                optimistic_sched::core::LoadMetric::NrThreads,
                1,
            )),
            Box::new(optimistic_sched::core::policy::MaxLoadChoice::new(
                optimistic_sched::core::LoadMetric::NrThreads,
            )),
            Box::new(optimistic_sched::core::policy::StealOne),
        );
        if owner_first {
            let _ = mq.core(CoreId(0)).complete_current();
            let _ = mq.balance_once(CoreId(1), &thieving);
        } else {
            let _ = mq.balance_once(CoreId(1), &thieving);
            let _ = mq.core(CoreId(0)).complete_current();
        }
        // The waiter must survive exactly once, wherever the race landed it.
        prop_assert_eq!(mq.total_threads(), 1);
    }
}

#[test]
#[ignore = "nightly-strength stress; run via `cargo test -- --ignored`"]
fn stress_deque_backend_many_rounds_high_iteration() {
    for round in 0..60 {
        let cores = 4 + (round % 13);
        let loads: Vec<usize> = (0..cores).map(|i| if i % 3 == 0 { 12 } else { 0 }).collect();
        let total: u64 = loads.iter().map(|&l| l as u64).sum();
        let mq: DequeMultiQueue = MultiQueue::with_loads(&loads);
        let policy = Policy::simple();
        let (rounds, _stats) = mq.converge(&policy, 512);
        assert!(rounds.is_some(), "round {round}: must converge");
        assert_eq!(mq.total_threads(), total, "round {round}: conservation");
    }
}
