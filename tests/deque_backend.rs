//! End-to-end tests of the lock-free (Chase–Lev) runqueue backend: the
//! same `MultiQueue` machinery as `tests/concurrent_rq.rs`, but with the
//! stealing phase resolved by CAS claims instead of double locks.
//!
//! The mutex-backend suite pins the protocol; this suite pins that the
//! lock-free discipline preserves every invariant the protocol needs —
//! conservation, convergence to work conservation, consistent stats —
//! plus the deque-specific edge cases (empty steal, single-element race,
//! ring overflow).

use optimistic_sched::core::{CoreId, Policy};
use optimistic_sched::rq::{
    DequeMultiQueue, MultiQueue, RqBackend as _, TinyDequeMultiQueue, TinySpillDequeRq,
    TINY_RING_CAPACITY,
};
use optimistic_sched::verify::lemmas;
use proptest::prelude::*;

/// The `delta >= 1` sweep policy of the e22 invariant: an idle core may
/// take from any core with at least one more thread, which is the weakest
/// filter that still refuses to create a new imbalance.
fn sweep_policy() -> Policy {
    use optimistic_sched::core::policy::{DeltaFilter, MaxLoadChoice, StealOne};
    use optimistic_sched::core::LoadMetric;
    Policy::new(
        LoadMetric::NrThreads,
        Box::new(DeltaFilter::new(LoadMetric::NrThreads, 1)),
        Box::new(MaxLoadChoice::new(LoadMetric::NrThreads)),
        Box::new(StealOne),
    )
}

#[test]
fn concurrent_rounds_never_lose_or_duplicate_tasks() {
    let loads: Vec<usize> = (0..16).map(|i| if i % 3 == 0 { 9 } else { 0 }).collect();
    let mq: DequeMultiQueue = MultiQueue::with_loads(&loads);
    let total = mq.total_threads();
    let policy = Policy::simple();
    for _ in 0..20 {
        mq.concurrent_round(&policy);
        assert_eq!(mq.total_threads(), total);
    }
}

#[test]
fn concurrent_balancing_converges_to_work_conservation() {
    let mut loads = vec![0usize; 32];
    loads[0] = 48;
    loads[7] = 16;
    let mq: DequeMultiQueue = MultiQueue::with_loads(&loads);
    let policy = Policy::simple();
    let (rounds, stats) = mq.converge(&policy, 256);
    assert!(rounds.is_some(), "lock-free optimistic balancing must converge");
    assert!(mq.is_work_conserving());
    assert_eq!(mq.total_threads(), 64);
    assert!(stats.successes() >= 31, "every idle core had to obtain work at least once");
}

#[test]
fn hierarchical_rounds_work_identically_on_the_lock_free_backend() {
    let topo = optimistic_sched::topology::TopologyBuilder::eight_node_numa();
    let mq: DequeMultiQueue = MultiQueue::with_topology(&topo);
    for _ in 0..16 {
        mq.spawn_on(CoreId(0));
    }
    let policy = Policy::simple();
    let (rounds, stats) = mq.converge_hierarchical(&policy, 128);
    assert!(rounds.is_some(), "hierarchical balancing must converge on the deque backend");
    assert!(mq.is_work_conserving());
    assert_eq!(mq.total_threads(), 16);
    assert!(stats.migrations() >= 7);
}

#[test]
fn steals_racing_wakeups_keep_stats_consistent() {
    // The deque twin of the mutex backend's stats race test: spawns land
    // on the victim while sixteen waves of thieves steal from it; after
    // the dust settles, counters and queue contents must agree.
    let mq = std::sync::Arc::new({
        let mq: DequeMultiQueue = MultiQueue::new(4);
        for _ in 0..8 {
            mq.spawn_on(CoreId(0));
        }
        mq
    });
    let policy = Policy::simple();
    let stats = optimistic_sched::rq::BalanceStats::new();
    std::thread::scope(|scope| {
        let waker = {
            let mq = std::sync::Arc::clone(&mq);
            scope.spawn(move || {
                for _ in 0..32 {
                    mq.spawn_on(CoreId(0));
                    std::thread::yield_now();
                }
            })
        };
        for _ in 0..16 {
            let stats = &stats;
            let policy = &policy;
            let mq = std::sync::Arc::clone(&mq);
            scope.spawn(move || {
                for thief in 1..4 {
                    let _ = mq.balance_once_recorded(CoreId(thief), policy, stats);
                }
            });
        }
        waker.join().unwrap();
    });
    assert_eq!(mq.total_threads(), 40, "8 initial + 32 woken, none lost or duplicated");
    let moved: u64 = (1..4).map(|c| mq.core(CoreId(c)).nr_threads_exact()).sum();
    assert!(moved <= stats.migrations(), "{moved} residents > {} counted", stats.migrations());
    assert_eq!(stats.migrations(), stats.successes(), "StealOne: one migration per success");
}

#[test]
fn empty_steal_reports_failure_not_phantom_work() {
    // Edge case: a victim with nothing to take.  The operation must
    // report a clean failure and change nothing.
    let mq: DequeMultiQueue = MultiQueue::with_loads(&[0, 0]);
    let policy = Policy::simple();
    let outcome = mq.balance_once(CoreId(0), &policy);
    assert!(!outcome.is_success());
    assert_eq!(mq.total_threads(), 0);
}

#[test]
fn cas_lemmas_hold_at_the_integration_level() {
    // The sched-verify CAS lemmas, exercised from the facade: the
    // deque-level steal-atomicity argument behind this whole suite.
    let report = lemmas::check_cas_steal_exclusivity(10, 128, 4);
    assert!(report.is_proved(), "{report}");
    let report = lemmas::check_cas_failure_implies_concurrent_success(25);
    assert!(report.is_proved(), "{report}");
    let report = lemmas::check_cas_single_element_winner(50);
    assert!(report.is_proved(), "{report}");
}

#[test]
fn multi_claim_lemmas_hold_at_the_integration_level() {
    // The batched half of the atomicity story: `steal_many(k)` claims are
    // pairwise disjoint across racing thieves and the owner, and a batch
    // that observes interference only fails when a rival actually won.
    let report = lemmas::check_multi_claim_exclusivity(10, 96, 4);
    assert!(report.is_proved(), "{report}");
    let report = lemmas::check_multi_claim_failure_implies_concurrent_success(25);
    assert!(report.is_proved(), "{report}");
    let report = lemmas::check_pop_straddling_batch_commit(25);
    assert!(report.is_proved(), "{report}");
}

#[test]
fn injector_lemmas_hold_at_the_integration_level() {
    // The overflow half of the atomicity story: overflowed work is counted
    // AND stealable, an injector retry implies a concurrent claim (forced
    // interleavings via the probe hooks), and storms conserve every task.
    let report = lemmas::check_injector_visibility(10, 4, 16);
    assert!(report.is_proved(), "{report}");
    let report = lemmas::check_injector_retry_implies_concurrent_claim(25);
    assert!(report.is_proved(), "{report}");
    let report = lemmas::check_injector_conservation_under_storm(5, 4, 256, 3);
    assert!(report.is_proved(), "{report}");
}

#[test]
fn overflow_storm_converges_without_any_tick_on_the_injector_backend() {
    // The tentpole claim at the MultiQueue level: a fan-out burst far past
    // the tiny ring's capacity must reach idle cores through balancing
    // alone — `converge` never calls `refresh`, so nothing may depend on a
    // tick-driven drain.  (On the legacy spill discipline this exact
    // scenario stalls; see the companion test below.)
    let mq: TinyDequeMultiQueue = MultiQueue::new(16);
    for _ in 0..40 {
        mq.spawn_on(CoreId(0));
    }
    assert!(
        mq.core(CoreId(0)).inner().injected_len() > 0,
        "the burst must actually overflow the tiny ring"
    );
    let policy = Policy::simple();
    let (rounds, stats) = mq.converge(&policy, 64);
    assert!(rounds.is_some(), "every task is reachable, so balancing must converge");
    assert!(mq.is_work_conserving());
    assert_eq!(mq.total_threads(), 40, "conservation across the overflow path");
    assert!(stats.successes() >= 15, "all fifteen idle cores had to obtain work");
}

#[test]
fn the_legacy_spill_discipline_stalls_the_same_storm() {
    // The documented hole, demonstrated end to end: same burst, same
    // budget, but overflow parked in the owner-private spill.  Thieves
    // drain the ring and then starve against work that every load observer
    // can see — the machine never becomes work-conserving without a tick.
    let mq: MultiQueue<TinySpillDequeRq> = MultiQueue::new(16);
    for _ in 0..40 {
        mq.spawn_on(CoreId(0));
    }
    let policy = Policy::simple();
    let (rounds, _stats) = mq.converge(&policy, 64);
    assert!(rounds.is_none(), "hidden overflow must stall convergence — that is the bug");
    assert!(!mq.is_work_conserving(), "idle cores starve against counted work");
    assert_eq!(mq.total_threads(), 40, "the hole delays work; it never loses it");
    // Only the visible ring's worth of waiting tasks could move: the
    // running task plus one ring of stealable waiters left core 0's count
    // at burst - ring everywhere the spill stayed hidden.
    assert_eq!(
        mq.core(CoreId(0)).nr_threads_exact(),
        40 - TINY_RING_CAPACITY as u64,
        "exactly one ring's worth was stealable"
    );
}

proptest! {
    /// Any load vector on any machine size: the deque backend converges
    /// to work conservation and conserves every task while doing it.
    #[test]
    fn deque_backend_converges_and_conserves(
        seed_loads in proptest::collection::vec(0usize..12, 2..10),
    ) {
        let total: usize = seed_loads.iter().sum();
        let mq: DequeMultiQueue = MultiQueue::with_loads(&seed_loads);
        let policy = Policy::simple();
        let (rounds, _stats) = mq.converge(&policy, 64 + 4 * total);
        prop_assert!(rounds.is_some());
        prop_assert!(mq.is_work_conserving());
        prop_assert_eq!(mq.total_threads(), total as u64);
    }

    /// The e22 invariant, as a property: after **any** sequence of
    /// enqueues (including ring-overflowing bursts), completions and
    /// balance attempts on the tiny-ring injector backend, one
    /// balance_once per idle core suffices to reach work conservation —
    /// no core stays idle while any core (ring *or* injector) holds
    /// waiting work.  The legacy spill discipline refutes exactly this:
    /// a burst parked in the private spill leaves idle cores stranded
    /// however many rounds they attempt.
    #[test]
    fn no_core_idles_while_the_injector_holds_work(
        cores in 3usize..6,
        ops in proptest::collection::vec((0u8..4, 0usize..6, 1usize..24), 1..40),
    ) {
        let mq: TinyDequeMultiQueue = MultiQueue::new(cores);
        let policy = sweep_policy();
        let mut spawned = 0u64;
        let mut completed = 0u64;
        for (kind, core, amount) in ops {
            let core = CoreId(core % cores);
            match kind {
                // A fan-out burst: deliberately allowed to exceed the tiny
                // ring so the overflow path is exercised constantly.
                0 => {
                    for _ in 0..amount {
                        mq.spawn_on(core);
                        spawned += 1;
                    }
                }
                1 => {
                    if mq.core(core).complete_current().is_some() {
                        completed += 1;
                    }
                }
                _ => {
                    let _ = mq.balance_once(core, &policy);
                }
            }
        }
        // The sweep: each idle core performs one pick_next round's worth
        // of balancing.  After it, work conservation must hold.
        for core in 0..cores {
            if mq.core(CoreId(core)).snapshot().is_idle() {
                let _ = mq.balance_once(CoreId(core), &policy);
            }
        }
        prop_assert_eq!(mq.total_threads(), spawned - completed);
        prop_assert!(
            mq.is_work_conserving(),
            "a core idled while waiting work existed (injected: {:?})",
            (0..cores).map(|c| mq.core(CoreId(c)).inner().injected_len()).collect::<Vec<_>>()
        );
    }

    /// Batched rounds on any fan-out: whatever `k` each acquisition asks
    /// for, concurrent batched balancing conserves every task and still
    /// reaches work conservation — the non-inversion trim can loop losers
    /// through the injector but may never hide or duplicate them.
    #[test]
    fn batched_rounds_conserve_and_converge_for_any_k(
        hot in 8usize..40,
        k in 1usize..9,
    ) {
        let mut loads = vec![0usize; 8];
        loads[0] = hot;
        let mq: DequeMultiQueue = MultiQueue::with_loads(&loads);
        let policy = Policy::simple();
        let batch = optimistic_sched::rq::StealBatch::Fixed(k);
        let mut converged = false;
        for _ in 0..(64 + hot) {
            if mq.is_work_conserving() {
                converged = true;
                break;
            }
            mq.concurrent_round_batched(&policy, batch);
            prop_assert_eq!(mq.total_threads(), hot as u64);
        }
        prop_assert!(converged || mq.is_work_conserving(), "batched balancing must converge");
        prop_assert_eq!(mq.total_threads(), hot as u64);
    }

    /// The imbalance-sized batch on the same sweep: `HalfImbalance` may
    /// claim large batches early, yet conservation and convergence hold.
    #[test]
    fn half_imbalance_batches_conserve_and_converge(hot in 8usize..48) {
        let mut loads = vec![0usize; 8];
        loads[0] = hot;
        let mq: DequeMultiQueue = MultiQueue::with_loads(&loads);
        let policy = Policy::simple();
        let batch = optimistic_sched::rq::StealBatch::HalfImbalance;
        for _ in 0..(64 + hot) {
            if mq.is_work_conserving() {
                break;
            }
            mq.concurrent_round_batched(&policy, batch);
            prop_assert_eq!(mq.total_threads(), hot as u64);
        }
        prop_assert!(mq.is_work_conserving(), "half-imbalance batching must converge");
    }

    /// Single-element owner-vs-thief race at the MultiQueue level: a
    /// two-core machine with one waiting task; whoever wins, exactly one
    /// task survives in exactly one place.
    #[test]
    fn single_waiting_task_ends_up_in_exactly_one_place(owner_first in proptest::arbitrary::any::<bool>()) {
        let mq: DequeMultiQueue = MultiQueue::with_loads(&[2, 0]);
        // Thief needs delta >= 1 to race the owner for the waiter.
        let thieving = Policy::new(
            optimistic_sched::core::LoadMetric::NrThreads,
            Box::new(optimistic_sched::core::policy::DeltaFilter::new(
                optimistic_sched::core::LoadMetric::NrThreads,
                1,
            )),
            Box::new(optimistic_sched::core::policy::MaxLoadChoice::new(
                optimistic_sched::core::LoadMetric::NrThreads,
            )),
            Box::new(optimistic_sched::core::policy::StealOne),
        );
        if owner_first {
            let _ = mq.core(CoreId(0)).complete_current();
            let _ = mq.balance_once(CoreId(1), &thieving);
        } else {
            let _ = mq.balance_once(CoreId(1), &thieving);
            let _ = mq.core(CoreId(0)).complete_current();
        }
        // The waiter must survive exactly once, wherever the race landed it.
        prop_assert_eq!(mq.total_threads(), 1);
    }
}

#[test]
#[ignore = "nightly-strength stress; run via `cargo test -- --ignored`"]
fn stress_overflow_storms_high_iteration() {
    // Repeated fan-out storms against tiny rings with genuinely concurrent
    // rounds: every burst overflows, and every storm must drain to work
    // conservation with exact accounting — the e22 invariant under real
    // thread contention instead of the deterministic sweep.
    for round in 0..40 {
        let cores = 8 + (round % 9);
        let mq: TinyDequeMultiQueue = MultiQueue::new(cores);
        let burst = 3 * cores;
        for _ in 0..burst {
            mq.spawn_on(CoreId(round % cores));
        }
        let policy = Policy::simple();
        let (rounds, _stats) = mq.converge(&policy, 256);
        assert!(rounds.is_some(), "round {round}: the storm must converge without any tick");
        assert!(mq.is_work_conserving(), "round {round}");
        assert_eq!(mq.total_threads(), burst as u64, "round {round}: conservation");
    }
}

#[test]
#[ignore = "nightly-strength stress; run via `cargo test -- --ignored`"]
fn stress_batched_steal_races_high_iteration() {
    // Batched claims under genuine thief contention, across machine sizes
    // and batch policies: every round of every storm must conserve the
    // exact task count while multi-claim CASes, injector batches and the
    // non-inversion trim race each other.
    use optimistic_sched::rq::StealBatch;
    for round in 0..40 {
        let cores = 8 + (round % 9);
        let burst = 6 * cores;
        let batch = match round % 3 {
            0 => StealBatch::Fixed(4),
            1 => StealBatch::Fixed(8),
            _ => StealBatch::HalfImbalance,
        };
        let mq: TinyDequeMultiQueue = MultiQueue::new(cores);
        for _ in 0..burst {
            mq.spawn_on(CoreId(round % cores));
        }
        let policy = Policy::simple();
        let mut converged = false;
        for _ in 0..256 {
            if mq.is_work_conserving() {
                converged = true;
                break;
            }
            mq.concurrent_round_batched(&policy, batch);
            assert_eq!(
                mq.total_threads(),
                burst as u64,
                "round {round}: batched races must conserve"
            );
        }
        assert!(converged, "round {round}: batched storm must converge ({batch:?})");
    }
}

#[test]
#[ignore = "nightly-strength stress; run via `cargo test -- --ignored`"]
fn stress_deque_backend_many_rounds_high_iteration() {
    for round in 0..60 {
        let cores = 4 + (round % 13);
        let loads: Vec<usize> = (0..cores).map(|i| if i % 3 == 0 { 12 } else { 0 }).collect();
        let total: u64 = loads.iter().map(|&l| l as u64).sum();
        let mq: DequeMultiQueue = MultiQueue::with_loads(&loads);
        let policy = Policy::simple();
        let (rounds, _stats) = mq.converge(&policy, 512);
        assert!(rounds.is_some(), "round {round}: must converge");
        assert_eq!(mq.total_threads(), total, "round {round}: conservation");
    }
}
