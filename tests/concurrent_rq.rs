//! Stress tests of the threaded runqueue substrate (`sched-rq`).
//!
//! The pure model is exhaustively verified; these tests check that the
//! real-atomics, real-locks implementation of the same protocol preserves
//! the invariants under genuine OS-thread concurrency.

use optimistic_sched::core::{CoreId, Policy};
use optimistic_sched::rq::MultiQueue;

#[test]
fn concurrent_rounds_never_lose_or_duplicate_tasks() {
    let loads: Vec<usize> = (0..16).map(|i| if i % 3 == 0 { 9 } else { 0 }).collect();
    let mq: MultiQueue = MultiQueue::with_loads(&loads);
    let total = mq.total_threads();
    let policy = Policy::simple();
    for _ in 0..20 {
        mq.concurrent_round(&policy);
        assert_eq!(mq.total_threads(), total);
    }
}

#[test]
fn concurrent_balancing_converges_to_work_conservation() {
    let mut loads = vec![0usize; 32];
    loads[0] = 48;
    loads[7] = 16;
    let mq: MultiQueue = MultiQueue::with_loads(&loads);
    let policy = Policy::simple();
    let (rounds, stats) = mq.converge(&policy, 256);
    assert!(rounds.is_some(), "threaded optimistic balancing must converge");
    assert!(mq.is_work_conserving());
    assert!(stats.successes() >= 31, "every idle core had to obtain work at least once");
}

#[test]
fn optimistic_failures_occur_under_real_contention_but_are_bounded() {
    // Many thieves, one victim with few surplus threads: most steals must
    // fail, but the ones that matter (filling idle cores) succeed and the
    // system converges.
    let mut loads = vec![0usize; 8];
    loads[0] = 4;
    let mq: MultiQueue = MultiQueue::with_loads(&loads);
    let policy = Policy::simple();
    let (rounds, stats) = mq.converge(&policy, 64);
    assert!(rounds.is_some());
    assert_eq!(mq.total_threads(), 4);
    // There were at most 3 surplus threads to hand out, so successes are
    // bounded by the imbalance, not by the number of attempts.
    assert!(stats.successes() <= 3 + 64, "successes are bounded");
}

#[test]
fn weighted_policy_also_works_on_the_threaded_substrate() {
    let mut loads = vec![0usize; 8];
    loads[3] = 12;
    let mq: MultiQueue = MultiQueue::with_loads(&loads);
    let policy = Policy::weighted();
    let (rounds, _stats) = mq.converge(&policy, 128);
    assert!(rounds.is_some());
    assert!(mq.is_work_conserving());
}

#[test]
fn pessimistic_and_optimistic_balancing_reach_the_same_fixed_point() {
    let loads = vec![10usize, 0, 0, 0];
    let policy = Policy::simple();

    let optimistic: MultiQueue = MultiQueue::with_loads(&loads);
    while !optimistic.is_work_conserving() {
        for core in 0..4 {
            let _ = optimistic.balance_once(CoreId(core), &policy);
        }
    }

    let pessimistic: MultiQueue = MultiQueue::with_loads(&loads);
    while !pessimistic.is_work_conserving() {
        for core in 0..4 {
            let _ = pessimistic.balance_once_pessimistic(CoreId(core), &policy);
        }
    }

    assert_eq!(optimistic.total_threads(), pessimistic.total_threads());
    assert!(optimistic.is_work_conserving() && pessimistic.is_work_conserving());
}
